"""Terminal bar charts for the experiment output.

The paper's artifacts are figures; these helpers render their bar/series
shape directly in the terminal so a reproduction run can be eyeballed
against the paper without any plotting dependency.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["bar_chart", "grouped_bar_chart"]

_FULL = "█"
_PART = " ▏▎▍▌▋▊▉█"


def _bar(value: float, vmax: float, width: int) -> str:
    if vmax <= 0 or value <= 0:
        return ""
    cells = value / vmax * width
    full = int(cells)
    frac = cells - full
    partial = _PART[int(round(frac * 8))] if full < width else ""
    return _FULL * full + partial


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    title: str | None = None,
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if width < 1:
        raise ValueError("width must be positive")
    vmax = max(values, default=0.0)
    label_w = max((len(str(x)) for x in labels), default=0)
    lines = [] if title is None else [title]
    for label, value in zip(labels, values):
        bar = _bar(float(value), vmax, width)
        lines.append(
            f"{str(label).ljust(label_w)} |{bar.ljust(width)}| "
            f"{value:.3g}{(' ' + unit) if unit else ''}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 40,
    unit: str = "",
    title: str | None = None,
) -> str:
    """Several series per group (the Fig. 12/13-style grouped bars)."""
    for name, values in series.items():
        if len(values) != len(groups):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(groups)} groups"
            )
    vmax = max(
        (v for values in series.values() for v in values), default=0.0
    )
    name_w = max((len(n) for n in series), default=0)
    lines = [] if title is None else [title]
    for gi, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            v = float(values[gi])
            lines.append(
                f"  {name.ljust(name_w)} |{_bar(v, vmax, width).ljust(width)}| "
                f"{v:.3g}{(' ' + unit) if unit else ''}"
            )
    return "\n".join(lines)
