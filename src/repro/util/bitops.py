"""Vectorized bit operations on ``uint64``-word-backed bitmaps.

The BFS frontier structures of the paper (``in_queue``, ``out_queue`` and
their summaries) are bitmaps over the vertex space, stored as arrays of
64-bit words exactly like the Graph500 reference code stores them as
``unsigned long`` arrays.  All operations here are numpy-vectorized; none
loop over individual bits in Python.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WORD_BITS",
    "WORD_DTYPE",
    "words_for_bits",
    "get_bits",
    "set_bits",
    "clear_bits",
    "popcount_words",
    "count_set_bits",
    "bits_to_bool",
    "bool_to_bits",
    "nonzero_bit_indices",
]

WORD_BITS = 64
WORD_DTYPE = np.uint64

# Lookup table mapping a byte value to its population count; used to
# popcount uint64 word arrays without Python-level loops.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def words_for_bits(nbits: int) -> int:
    """Number of 64-bit words needed to hold ``nbits`` bits."""
    if nbits < 0:
        raise ValueError(f"nbits must be non-negative, got {nbits}")
    return (nbits + WORD_BITS - 1) // WORD_BITS


def _check_words(words: np.ndarray) -> None:
    if words.dtype != WORD_DTYPE:
        raise TypeError(f"bitmap words must be uint64, got {words.dtype}")


def get_bits(words: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Return a boolean array with the bit values at positions ``idx``.

    ``idx`` may contain repeated positions and is not required to be sorted.
    """
    _check_words(words)
    idx = np.asarray(idx, dtype=np.int64)
    w = words[idx >> 6]
    shift = (idx & 63).astype(np.uint64)
    return ((w >> shift) & np.uint64(1)).astype(bool)


def set_bits(words: np.ndarray, idx: np.ndarray) -> None:
    """Set (to 1) the bits at positions ``idx`` in place.

    Handles repeated indices correctly via ``np.bitwise_or.at``.
    """
    _check_words(words)
    idx = np.asarray(idx, dtype=np.int64)
    if idx.size == 0:
        return
    masks = np.uint64(1) << (idx & 63).astype(np.uint64)
    np.bitwise_or.at(words, idx >> 6, masks)


def clear_bits(words: np.ndarray, idx: np.ndarray) -> None:
    """Clear (to 0) the bits at positions ``idx`` in place."""
    _check_words(words)
    idx = np.asarray(idx, dtype=np.int64)
    if idx.size == 0:
        return
    masks = ~(np.uint64(1) << (idx & 63).astype(np.uint64))
    np.bitwise_and.at(words, idx >> 6, masks)


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-word population count of a uint64 array (returned as int64)."""
    _check_words(words)
    by = words.view(np.uint8)
    counts = _POPCOUNT8[by]
    return counts.reshape(words.shape[0], 8).sum(axis=1, dtype=np.int64)


def count_set_bits(words: np.ndarray, nbits: int | None = None) -> int:
    """Total number of set bits.

    If ``nbits`` is given, bits at positions >= nbits (padding in the last
    word) are ignored; callers that maintain the invariant that padding bits
    are always zero can omit it.
    """
    _check_words(words)
    if words.size == 0:
        return 0
    if nbits is None:
        return int(popcount_words(words).sum())
    used_words = words_for_bits(nbits)
    total = int(popcount_words(words[:used_words]).sum())
    # Subtract any set padding bits in the final word.
    pad = used_words * WORD_BITS - nbits
    if pad:
        last = int(words[used_words - 1])
        pad_mask = ((1 << pad) - 1) << (WORD_BITS - pad)
        total -= bin(last & pad_mask).count("1")
    return total


def bits_to_bool(words: np.ndarray, nbits: int) -> np.ndarray:
    """Expand a word array to a boolean array of length ``nbits``."""
    _check_words(words)
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return bits[:nbits].astype(bool)


def bool_to_bits(flags: np.ndarray) -> np.ndarray:
    """Pack a boolean array into a uint64 word array (little-endian bits)."""
    flags = np.asarray(flags, dtype=bool)
    nwords = words_for_bits(flags.size)
    packed = np.packbits(flags, bitorder="little")
    out = np.zeros(nwords * 8, dtype=np.uint8)
    out[: packed.size] = packed
    return out.view(WORD_DTYPE)


def nonzero_bit_indices(words: np.ndarray, nbits: int) -> np.ndarray:
    """Indices (int64) of set bits, in increasing order."""
    _check_words(words)
    return np.flatnonzero(bits_to_bool(words, nbits)).astype(np.int64)
