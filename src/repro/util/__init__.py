"""Low-level utilities: bit manipulation, segmented array operations,
statistics helpers and plain-text table formatting.

These modules are dependency-free (numpy only) and are used by every other
subpackage.
"""

from repro.util.bitops import (
    WORD_BITS,
    words_for_bits,
    get_bits,
    set_bits,
    clear_bits,
    popcount_words,
    count_set_bits,
    bits_to_bool,
    bool_to_bits,
    nonzero_bit_indices,
)
from repro.util.segments import (
    segment_ids,
    segment_first_true,
    segment_any,
    segment_sums,
    segment_counts_until_first_true,
)
from repro.util.stats_util import harmonic_mean, geometric_mean, describe
from repro.util.ascii_chart import bar_chart, grouped_bar_chart
from repro.util.formatting import (
    format_table,
    format_si,
    format_bytes,
    format_time_ns,
)

__all__ = [
    "WORD_BITS",
    "words_for_bits",
    "get_bits",
    "set_bits",
    "clear_bits",
    "popcount_words",
    "count_set_bits",
    "bits_to_bool",
    "bool_to_bits",
    "nonzero_bit_indices",
    "segment_ids",
    "segment_first_true",
    "segment_any",
    "segment_sums",
    "segment_counts_until_first_true",
    "harmonic_mean",
    "geometric_mean",
    "describe",
    "bar_chart",
    "grouped_bar_chart",
    "format_table",
    "format_si",
    "format_bytes",
    "format_time_ns",
]
