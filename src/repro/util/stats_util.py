"""Small statistics helpers used by the Graph500 driver and the experiment
harness (the Graph500 specification reports the harmonic mean of per-root
TEPS values)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["harmonic_mean", "geometric_mean", "describe", "Summary"]


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of strictly positive values.

    This is the mean the Graph500 benchmark mandates for TEPS across BFS
    roots (it is dominated by the *slowest* iterations, as intended).
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("harmonic_mean of an empty sequence")
    if np.any(arr <= 0):
        raise ValueError("harmonic_mean requires strictly positive values")
    return float(arr.size / np.sum(1.0 / arr))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric_mean of an empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


@dataclass(frozen=True)
class Summary:
    """Five-number summary plus mean/std for a sample of measurements."""

    n: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float


def describe(values: Sequence[float]) -> Summary:
    """Summary statistics for a non-empty sample."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("describe of an empty sequence")
    q = np.percentile(arr, [25, 50, 75])
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        p25=float(q[0]),
        median=float(q[1]),
        p75=float(q[2]),
        maximum=float(arr.max()),
    )
