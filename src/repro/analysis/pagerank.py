"""Distributed PageRank on the simulated NUMA cluster.

The paper closes with "we believe these approaches can be migrated to
other applications with similar characteristic" — applications that
allgather a large, read-only, replicated vector every superstep.
PageRank is the canonical one: each power iteration needs the full rank
vector at every rank (the ``in_queue`` analogue, 64x larger since it
holds doubles, not bits), making the sharing and parallel-allgather
optimizations apply verbatim.  This module is the migration claim made
executable: a functional distributed PageRank whose per-iteration
allgather is priced with the same algorithms as the BFS engine's.

Semantics match :func:`networkx.pagerank` (damping, uniform dangling
redistribution, L1 convergence test).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import BFSConfig
from repro.errors import ConfigError, GraphError
from repro.graph.partition import Partition1D, word_aligned_bounds
from repro.graph.types import Graph
from repro.machine.memory import StructureAccess
from repro.machine.spec import ClusterSpec
from repro.mpi.collectives import allgather_time
from repro.mpi.mapping import ProcessMapping
from repro.mpi.simcomm import SimComm

__all__ = ["PageRankResult", "distributed_pagerank"]


@dataclass
class PageRankResult:
    """Converged ranks plus the simulated cost of computing them."""

    ranks: np.ndarray
    iterations: int
    converged: bool
    compute_seconds: float
    comm_seconds: float
    per_iteration_comm_ns: float = 0.0
    comm_breakdown: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Total simulated time (compute + communication)."""
        return self.compute_seconds + self.comm_seconds

    @property
    def comm_fraction(self) -> float:
        """Share of communication in the total simulated time."""
        return self.comm_seconds / self.seconds if self.seconds else 0.0


def distributed_pagerank(
    graph: Graph,
    cluster: ClusterSpec,
    config: BFSConfig | None = None,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iter: int = 100,
) -> PageRankResult:
    """Power-iteration PageRank, partitioned like the BFS engine.

    Each iteration: every rank updates the ranks of its local vertices
    from the replicated contribution vector, then the next vector is
    assembled with the configuration's in_queue allgather algorithm —
    shared buffers and parallel subgroups cut its cost exactly as they
    do for BFS (the paper's migration claim).
    """
    if not 0.0 < damping < 1.0:
        raise ConfigError(f"damping must be in (0, 1), got {damping}")
    if max_iter < 1:
        raise ConfigError("max_iter must be >= 1")
    if graph.num_vertices == 0:
        raise GraphError("empty graph")
    config = config or BFSConfig.original_ppn8()

    ppn = config.resolve_ppn(cluster)
    mapping = ProcessMapping(cluster, ppn, config.binding)
    comm = SimComm(cluster, mapping)
    n = graph.num_vertices
    if n % 64 != 0 or n < mapping.num_ranks * 64:
        raise ConfigError(
            f"num_vertices={n} must be a multiple of 64 and at least "
            f"64 * num_ranks for the partitioned vector"
        )
    partition = Partition1D(
        n, mapping.num_ranks, bounds=word_aligned_bounds(n, mapping.num_ranks)
    )
    locals_ = [
        partition.extract_local(graph, r) for r in range(mapping.num_ranks)
    ]

    degrees = graph.degrees().astype(np.float64)
    nonzero_deg = np.maximum(degrees, 1.0)
    ranks = np.full(n, 1.0 / n)
    dangling = degrees == 0

    # --- pricing setup (same machinery as the BFS timing assembler) -----
    loc = mapping.location(0)
    memory = comm.memory
    vector_bytes = 8.0 * n
    vector_placement = config.in_queue_placement(loc.private_placement)
    lat_vector = memory.access_latency(
        StructureAccess("rank_vector", vector_bytes, vector_placement),
        loc.threads_sockets,
    )
    lat_graph = memory.access_latency(
        StructureAccess(
            "graph",
            graph.num_directed_edges / mapping.num_ranks * 8.0,
            loc.private_placement,
        ),
        loc.threads_sockets,
    )
    arcs_per_rank = graph.num_directed_edges / mapping.num_ranks
    verts_per_rank = n / mapping.num_ranks
    # Per iteration, per rank: one random read into the contribution
    # vector per arc plus the adjacency line accesses (roofline latency
    # term, as in core/timing.py).
    per_iter_compute_ns = (
        arcs_per_rank * (lat_vector + lat_graph / 8.0)
        + verts_per_rank * lat_graph
    ) / (loc.threads * cluster.node.socket.mlp)
    part_bytes = vector_bytes / mapping.num_ranks
    per_iter_comm_ns, comm_steps = allgather_time(
        comm, config.in_queue_algorithm(), part_bytes, vector_bytes
    )
    per_iter_comm_ns += comm.allreduce_time()  # convergence check

    iterations = 0
    converged = False
    for iterations in range(1, max_iter + 1):
        contrib = ranks / nonzero_deg
        dangling_mass = float(ranks[dangling].sum())
        base = (1.0 - damping) / n + damping * dangling_mass / n
        new_ranks = np.empty_like(ranks)
        for lg in locals_:
            # Sum the contributions of each local vertex's neighbours
            # (cumulative-sum segmented reduction; exact for empty rows).
            csum = np.concatenate([[0.0], np.cumsum(contrib[lg.targets])])
            sums = csum[lg.offsets[1:]] - csum[lg.offsets[:-1]]
            new_ranks[lg.lo : lg.hi] = base + damping * sums
        err = float(np.abs(new_ranks - ranks).sum())
        ranks = new_ranks
        if err < tol * n:
            converged = True
            break

    total_compute = per_iter_compute_ns * iterations
    total_comm = per_iter_comm_ns * iterations
    return PageRankResult(
        ranks=ranks,
        iterations=iterations,
        converged=converged,
        compute_seconds=total_compute / 1e9,
        comm_seconds=total_comm / 1e9,
        per_iteration_comm_ns=per_iter_comm_ns,
        comm_breakdown=comm_steps,
    )
