"""Graph analytics built on the BFS engine.

The paper's introduction motivates BFS as "a key building block for many
graph analysis algorithms, such as finding spanning tree, shortest path,
connected component".  This subpackage delivers those consumers on top of
:class:`repro.core.BFSEngine`, so the optimized traversal (and its
simulated cost) powers higher-level analytics:

* :func:`bfs_tree` / :func:`shortest_hops` — spanning tree and unweighted
  shortest-path distances;
* :func:`connected_components` — component labelling via repeated BFS;
* :func:`estimate_diameter` — double-sweep lower bound on the diameter;
* :func:`degrees_of_separation` — hop-distance histogram.

Every function also reports the simulated cluster time the analysis
would cost, because the engine prices each traversal.
"""

from repro.analysis.pagerank import PageRankResult, distributed_pagerank
from repro.analysis.algorithms import (
    AnalysisCost,
    bfs_tree,
    shortest_hops,
    connected_components,
    estimate_diameter,
    degrees_of_separation,
)

__all__ = [
    "PageRankResult",
    "distributed_pagerank",
    "AnalysisCost",
    "bfs_tree",
    "shortest_hops",
    "connected_components",
    "estimate_diameter",
    "degrees_of_separation",
]
