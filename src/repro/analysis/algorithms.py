"""BFS-powered graph algorithms (see package docstring)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import BFSConfig
from repro.core.engine import BFSEngine
from repro.core.validate import compute_levels
from repro.errors import GraphError
from repro.graph.types import Graph
from repro.machine.spec import ClusterSpec, paper_cluster

__all__ = [
    "AnalysisCost",
    "bfs_tree",
    "shortest_hops",
    "connected_components",
    "estimate_diameter",
    "degrees_of_separation",
]


@dataclass
class AnalysisCost:
    """Simulated cluster cost of an analysis."""

    traversals: int = 0
    simulated_seconds: float = 0.0

    def add(self, seconds: float) -> None:
        """Record one more priced traversal."""
        self.traversals += 1
        self.simulated_seconds += seconds


def _engine(
    graph: Graph,
    cluster: ClusterSpec | None,
    config: BFSConfig | None,
) -> BFSEngine:
    cluster = cluster or paper_cluster(nodes=1)
    config = config or BFSConfig.original_ppn8()
    return BFSEngine(graph, cluster, config)


def bfs_tree(
    graph: Graph,
    root: int,
    cluster: ClusterSpec | None = None,
    config: BFSConfig | None = None,
) -> tuple[np.ndarray, AnalysisCost]:
    """Spanning tree of ``root``'s component as a parent array."""
    engine = _engine(graph, cluster, config)
    result = engine.run(root)
    cost = AnalysisCost()
    cost.add(result.seconds)
    return result.parent, cost


def shortest_hops(
    graph: Graph,
    root: int,
    cluster: ClusterSpec | None = None,
    config: BFSConfig | None = None,
) -> tuple[np.ndarray, AnalysisCost]:
    """Unweighted shortest-path distances from ``root`` (-1 unreachable)."""
    parent, cost = bfs_tree(graph, root, cluster, config)
    return compute_levels(graph, root, parent), cost


def connected_components(
    graph: Graph,
    cluster: ClusterSpec | None = None,
    config: BFSConfig | None = None,
    max_components: int | None = None,
) -> tuple[np.ndarray, AnalysisCost]:
    """Component label per vertex via repeated BFS.

    Isolated vertices get singleton components.  ``max_components`` stops
    early (remaining vertices keep label -1), which bounds cost on graphs
    with many small components.
    """
    engine = _engine(graph, cluster, config)
    labels = np.full(graph.num_vertices, -1, dtype=np.int64)
    degrees = graph.degrees()
    cost = AnalysisCost()
    label = 0
    # Isolated vertices are their own components — no traversal needed.
    isolated = np.flatnonzero(degrees == 0)
    for v in isolated:
        labels[v] = label
        label += 1
    remaining = np.flatnonzero(labels < 0)
    while remaining.size:
        if max_components is not None and label >= max_components:
            break
        root = int(remaining[0])
        result = engine.run(root)
        cost.add(result.seconds)
        reached = result.parent >= 0
        labels[reached & (labels < 0)] = label
        label += 1
        remaining = np.flatnonzero(labels < 0)
    return labels, cost


def estimate_diameter(
    graph: Graph,
    cluster: ClusterSpec | None = None,
    config: BFSConfig | None = None,
    sweeps: int = 2,
    seed: int = 3,
) -> tuple[int, AnalysisCost]:
    """Lower bound on the diameter by the double-sweep heuristic.

    Start from a random non-isolated vertex, BFS to the farthest vertex,
    repeat ``sweeps`` times; the largest eccentricity seen is a lower
    bound that is exact on trees.
    """
    if sweeps < 1:
        raise GraphError("sweeps must be >= 1")
    degrees = graph.degrees()
    candidates = np.flatnonzero(degrees > 0)
    if candidates.size == 0:
        return 0, AnalysisCost()
    rng = np.random.default_rng(seed)
    root = int(rng.choice(candidates))
    cost = AnalysisCost()
    best = 0
    engine = _engine(graph, cluster, config)
    for _ in range(sweeps):
        result = engine.run(root)
        cost.add(result.seconds)
        levels = compute_levels(graph, root, result.parent)
        ecc = int(levels.max())
        best = max(best, ecc)
        # Next sweep starts from a farthest vertex.
        far = np.flatnonzero(levels == ecc)
        root = int(far[0])
    return best, cost


@dataclass
class SeparationHistogram:
    """Hop-distance distribution from a set of seeds."""

    counts: dict[int, int] = field(default_factory=dict)
    unreachable: int = 0

    def fraction_within(self, hops: int) -> float:
        """Fraction of reached vertices within ``hops`` hops."""
        total = sum(self.counts.values())
        if total == 0:
            return 0.0
        within = sum(c for h, c in self.counts.items() if h <= hops)
        return within / total


def degrees_of_separation(
    graph: Graph,
    seeds: np.ndarray,
    cluster: ClusterSpec | None = None,
    config: BFSConfig | None = None,
) -> tuple[SeparationHistogram, AnalysisCost]:
    """Aggregate hop-distance histogram from ``seeds``."""
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.size == 0:
        raise GraphError("need at least one seed vertex")
    engine = _engine(graph, cluster, config)
    hist = SeparationHistogram()
    cost = AnalysisCost()
    for seed in seeds:
        result = engine.run(int(seed))
        cost.add(result.seconds)
        levels = compute_levels(graph, int(seed), result.parent)
        reached = levels[levels >= 0]
        hist.unreachable += int(np.count_nonzero(levels < 0))
        values, freq = np.unique(reached, return_counts=True)
        for v, f in zip(values.tolist(), freq.tolist()):
            hist.counts[v] = hist.counts.get(v, 0) + f
    return hist, cost
