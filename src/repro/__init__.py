"""repro — reproduction of "Evaluation and Optimization of Breadth-First
Search on NUMA Cluster" (Cui et al., IEEE CLUSTER 2012).

The package implements the paper's hybrid BFS with its full NUMA,
communication and bitmap-granularity optimization stack, on a simulated
cluster of multi-socket NUMA nodes (see DESIGN.md for the substitution
argument).  Quick start::

    from repro import rmat_graph, paper_cluster, BFSConfig, run_graph500

    graph = rmat_graph(scale=15)
    cluster = paper_cluster(nodes=4)
    result = run_graph500(graph, cluster, BFSConfig.original_ppn8(),
                          num_roots=8)
    print(result.harmonic_mean_teps)
"""

from repro.errors import (
    ReproError,
    ConfigError,
    GraphError,
    ValidationError,
    SimulationError,
    CommunicationError,
)
from repro.graph import (
    Graph,
    EdgeList,
    build_graph,
    rmat_graph,
    generate_rmat_edges,
    RmatParams,
    Partition1D,
)
from repro.machine import (
    ClusterSpec,
    NodeSpec,
    SocketSpec,
    paper_cluster,
    x7550_node,
    x7550_socket,
)
from repro.mpi import (
    AllgatherAlgorithm,
    BindingPolicy,
    ProcessMapping,
    SimComm,
    available_codecs,
)
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    RunTelemetry,
    SpanTracer,
    chrome_trace,
    write_chrome_trace,
)
from repro.core import (
    compare_configs,
    optimization_stack,
    run_bfs,
    BFSConfig,
    CommConfig,
    SharingVariant,
    BFSEngine,
    BFSResult,
    Bitmap,
    SummaryBitmap,
    Graph500Result,
    TraversalMode,
    paper_variants,
    run_graph500,
    validate_parent_tree,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigError",
    "GraphError",
    "ValidationError",
    "SimulationError",
    "CommunicationError",
    "Graph",
    "EdgeList",
    "build_graph",
    "rmat_graph",
    "generate_rmat_edges",
    "RmatParams",
    "Partition1D",
    "ClusterSpec",
    "NodeSpec",
    "SocketSpec",
    "paper_cluster",
    "x7550_node",
    "x7550_socket",
    "AllgatherAlgorithm",
    "BindingPolicy",
    "ProcessMapping",
    "SimComm",
    "available_codecs",
    "compare_configs",
    "optimization_stack",
    "run_bfs",
    "BFSConfig",
    "CommConfig",
    "SharingVariant",
    "BFSEngine",
    "BFSResult",
    "Bitmap",
    "SummaryBitmap",
    "Graph500Result",
    "TraversalMode",
    "paper_variants",
    "run_graph500",
    "validate_parent_tree",
    "NULL_TRACER",
    "MetricsRegistry",
    "NullTracer",
    "RunTelemetry",
    "SpanTracer",
    "chrome_trace",
    "write_chrome_trace",
    "__version__",
]
