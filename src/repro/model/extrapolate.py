"""Re-pricing of a measured BFS run at a larger target scale."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.counts import RunCounts
from repro.core.engine import BFSEngine, BFSResult
from repro.core.timing import BfsTiming, StructureSizes, assemble
from repro.errors import ConfigError

__all__ = ["ScaledPrediction", "scale_factor", "extrapolate_result"]


def scale_factor(actual_vertices: int, target_scale: int) -> float:
    """Multiplier taking a graph of ``actual_vertices`` to ``2**target``."""
    if actual_vertices <= 0:
        raise ConfigError("actual graph has no vertices")
    if target_scale < 0 or target_scale > 48:
        raise ConfigError(f"unreasonable target scale {target_scale}")
    factor = (1 << target_scale) / actual_vertices
    if factor < 1.0:
        raise ConfigError(
            f"target scale {target_scale} is smaller than the measured "
            f"graph ({actual_vertices} vertices); extrapolation only "
            f"scales up"
        )
    return factor


@dataclass
class ScaledPrediction:
    """One run priced at a paper scale."""

    target_scale: int
    factor: float
    counts: RunCounts
    timing: BfsTiming
    traversed_edges: int

    @property
    def seconds(self) -> float:
        """Simulated wall time at the target scale."""
        return self.timing.total_seconds

    @property
    def teps(self) -> float:
        """Traversed edges per simulated second at the target scale."""
        if self.seconds <= 0:
            return 0.0
        return self.traversed_edges / self.seconds


def extrapolate_result(
    result: BFSResult, engine: BFSEngine, target_scale: int
) -> ScaledPrediction:
    """Price ``result``'s run at graph scale ``target_scale``.

    The engine provides the communicator, configuration and cost
    constants the original run was priced with; only the counts and the
    structure sizes change.
    """
    factor = scale_factor(result.counts.num_vertices, target_scale)
    scaled_counts = result.counts.scaled(factor)
    sizes = StructureSizes(
        num_vertices=scaled_counts.num_vertices,
        num_arcs=int(round(engine.graph.num_directed_edges * factor)),
        num_ranks=scaled_counts.num_ranks,
        granularity=engine.config.granularity,
    )
    timing = assemble(
        scaled_counts, engine.comm, engine.config, sizes, engine.constants
    )
    return ScaledPrediction(
        target_scale=target_scale,
        factor=factor,
        counts=scaled_counts,
        timing=timing,
        traversed_edges=scaled_counts.traversed_edges,
    )
