"""Graph500 protocol with paper-scale pricing.

``predict_graph500`` runs the real algorithm on a reduced-scale R-MAT
graph and prices every root's run at the paper's target scale.  All the
weak-scaling experiments (Figs. 9, 12-16) are built on this: the paper
pairs node counts with scales (1 node -> 28, 2 -> 29, 4 -> 30, 8 -> 31,
16 -> 32), and the reproduction runs each at ``scale - offset``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import BFSConfig
from repro.core.engine import BFSEngine
from repro.core.teps import run_graph500
from repro.core.timing import CostConstants, PhaseBreakdown
from repro.graph.types import Graph
from repro.machine.spec import ClusterSpec
from repro.model.extrapolate import ScaledPrediction, extrapolate_result
from repro.util import harmonic_mean

__all__ = ["PredictedGraph500", "predict_graph500"]


@dataclass
class PredictedGraph500:
    """Aggregate of a Graph500 evaluation priced at ``target_scale``."""

    config: BFSConfig
    target_scale: int
    measured_scale: int
    predictions: list[ScaledPrediction] = field(default_factory=list)

    @property
    def per_root_teps(self) -> list[float]:
        """Predicted TEPS per root."""
        return [p.teps for p in self.predictions]

    @property
    def harmonic_mean_teps(self) -> float:
        """The Graph500 headline figure at the target scale."""
        return harmonic_mean(self.per_root_teps)

    @property
    def mean_seconds(self) -> float:
        """Arithmetic mean of per-root predicted times."""
        return float(np.mean([p.seconds for p in self.predictions]))

    def mean_breakdown(self) -> PhaseBreakdown:
        """Per-phase times averaged over the roots (ns)."""
        agg = PhaseBreakdown()
        k = len(self.predictions)
        for p in self.predictions:
            bd = p.timing.breakdown
            agg.td_compute += bd.td_compute / k
            agg.td_comm += bd.td_comm / k
            agg.bu_compute += bd.bu_compute / k
            agg.bu_comm += bd.bu_comm / k
            agg.switch += bd.switch / k
            agg.stall += bd.stall / k
        return agg

    def mean_bu_comm_per_level(self) -> float:
        """Average cost of one bottom-up communication phase (Fig. 12/13
        bars), in ns."""
        times = []
        for p in self.predictions:
            times.extend(
                lt.comm_ns
                for lt in p.timing.levels
                if lt.direction == "bottom_up"
            )
        return float(np.mean(times)) if times else 0.0

    def mean_allgather_bytes(self) -> dict[str, float]:
        """Mean per-root allgather payload totals at the target scale.

        Sums the bottom-up in_queue and summary allgathers; ``raw`` is
        the pre-codec payload, ``wire`` what the frontier codec actually
        put on the wire (equal under ``raw``).  This is the quantity the
        BENCH_comm.json baseline and the Fig. 12/13 codec claims report.
        """
        raw = wire = 0.0
        k = max(len(self.predictions), 1)
        for p in self.predictions:
            for lc in p.counts.levels:
                if lc.direction != "bottom_up":
                    continue
                raw += (
                    lc.inq_raw_total_bytes + lc.summary_raw_total_bytes
                ) / k
                wire += (
                    lc.inq_wire_total_bytes + lc.summary_wire_total_bytes
                ) / k
        return {"raw": raw, "wire": wire}


def predict_graph500(
    graph: Graph,
    cluster: ClusterSpec,
    config: BFSConfig,
    target_scale: int,
    num_roots: int = 8,
    seed: int = 2,
    constants: CostConstants = CostConstants(),
) -> PredictedGraph500:
    """Run the Graph500 protocol on ``graph`` and price it at
    ``2**target_scale`` vertices."""
    measured = run_graph500(
        graph,
        cluster,
        config,
        num_roots=num_roots,
        seed=seed,
        constants=constants,
    )
    engine = BFSEngine(graph, cluster, config, constants=constants)
    out = PredictedGraph500(
        config=config,
        target_scale=target_scale,
        measured_scale=int(np.log2(graph.num_vertices)),
    )
    for res in measured.results:
        out.predictions.append(
            extrapolate_result(res, engine, target_scale)
        )
    return out
