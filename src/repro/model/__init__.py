"""Paper-scale prediction.

The functional simulator runs at laptop scale (2^11-2^20 vertices); the
paper evaluates at 2^28-2^32.  Because timing is a pure function of event
counts and structure sizes (:mod:`repro.core.timing`), a measured run can
be *re-priced* at a paper scale: per-level counts scale linearly with the
graph (R-MAT frontier densities are scale-invariant to first order), and
structure sizes — which drive the cache model and the allgather payloads
— are evaluated at the target scale.

This is what all the weak-scaling figures use: each experiment runs the
real algorithm at ``scale - offset`` and prices it at ``scale``.
"""

from repro.model.extrapolate import (
    ScaledPrediction,
    extrapolate_result,
    scale_factor,
)
from repro.model.predict import PredictedGraph500, predict_graph500

__all__ = [
    "ScaledPrediction",
    "extrapolate_result",
    "scale_factor",
    "PredictedGraph500",
    "predict_graph500",
]
