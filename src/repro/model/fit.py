"""Automatic re-calibration of the machine constants.

DESIGN.md §6 documents the constants that were fit to the paper's
headline ratios.  This module makes that procedure reproducible: a
coordinate-descent search over the calibration constants that minimizes
the log-error against a set of target ratios, each evaluated in the
(fast) analytic mode.  Use it after changing the cost model:

    from repro.model.fit import PAPER_TARGETS, calibrate
    best, err = calibrate(PAPER_TARGETS)

The default targets are the paper's Fig. 9/16 ratios; custom targets can
encode any other machine's measured behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import BFSConfig
from repro.errors import ConfigError
from repro.machine.spec import ClusterSpec, paper_cluster
from repro.model.analytic import analytic_graph500
from repro.model.sensitivity import CALIBRATION_CONSTANTS, perturb

__all__ = ["CalibrationTarget", "PAPER_TARGETS", "objective", "calibrate"]


@dataclass(frozen=True)
class CalibrationTarget:
    """One measured ratio the model should reproduce."""

    name: str
    # Configurations whose simulated-seconds ratio is the measurement:
    slow: BFSConfig
    fast: BFSConfig
    target_ratio: float
    weight: float = 1.0
    scale: int = 32

    def measured(self, cluster: ClusterSpec) -> float:
        """The ratio the model currently produces on ``cluster``."""
        t_slow = analytic_graph500(cluster, self.slow, self.scale).seconds
        t_fast = analytic_graph500(cluster, self.fast, self.scale).seconds
        return t_slow / t_fast


def _paper_targets() -> tuple[CalibrationTarget, ...]:
    return (
        CalibrationTarget(
            name="numa_mapping (Fig. 9)",
            slow=BFSConfig.original_ppn1(),
            fast=BFSConfig.original_ppn8(),
            target_ratio=1.53,
            weight=2.0,
        ),
        CalibrationTarget(
            name="overall_stack (Fig. 9)",
            slow=BFSConfig.original_ppn1(),
            fast=BFSConfig.granularity_variant(256),
            target_ratio=2.44,
            weight=2.0,
        ),
        CalibrationTarget(
            name="share_in_queue (Fig. 9)",
            slow=BFSConfig.original_ppn8(),
            fast=BFSConfig.share_in_queue_variant(),
            target_ratio=1.341,
        ),
        CalibrationTarget(
            name="granularity_256 (Fig. 16)",
            slow=BFSConfig.granularity_variant(64),
            fast=BFSConfig.granularity_variant(256),
            target_ratio=1.102,
        ),
    )


PAPER_TARGETS = _paper_targets()


def objective(
    cluster: ClusterSpec,
    targets: tuple[CalibrationTarget, ...] = PAPER_TARGETS,
) -> float:
    """Weighted sum of squared log-errors against the targets."""
    total = 0.0
    for target in targets:
        measured = target.measured(cluster)
        total += target.weight * math.log(measured / target.target_ratio) ** 2
    return total


@dataclass
class CalibrationResult:
    cluster: ClusterSpec
    error: float
    # constant -> cumulative multiplier applied relative to the start.
    multipliers: dict[str, float] = field(default_factory=dict)


def calibrate(
    targets: tuple[CalibrationTarget, ...] = PAPER_TARGETS,
    start: ClusterSpec | None = None,
    constants: tuple[str, ...] = (
        "congestion_per_socket",
        "cache_usable_fraction",
        "tlb_penalty_ns",
        "hop_latency_ns",
    ),
    rounds: int = 3,
    step: float = 1.3,
) -> CalibrationResult:
    """Coordinate descent with a shrinking multiplicative step.

    Each round tries multiplying every constant by ``step`` and
    ``1/step`` and keeps improvements; the step shrinks between rounds.
    Deterministic and cheap (analytic-mode evaluations only).
    """
    for name in constants:
        if name not in CALIBRATION_CONSTANTS:
            raise ConfigError(f"unknown calibration constant {name!r}")
    if rounds < 1 or step <= 1.0:
        raise ConfigError("rounds must be >= 1 and step > 1")
    cluster = start or paper_cluster(nodes=16)
    best_err = objective(cluster, targets)
    multipliers = {name: 1.0 for name in constants}
    current_step = step
    for _ in range(rounds):
        for name in constants:
            for factor in (current_step, 1.0 / current_step):
                candidate = perturb(cluster, name, factor)
                err = objective(candidate, targets)
                if err < best_err - 1e-12:
                    cluster = candidate
                    best_err = err
                    multipliers[name] *= factor
        current_step = 1.0 + (current_step - 1.0) / 2.0
    return CalibrationResult(
        cluster=cluster, error=best_err, multipliers=multipliers
    )
