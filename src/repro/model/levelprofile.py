"""Analytic BFS level-profile model for R-MAT graphs at arbitrary scale.

Small functional runs cannot exhibit every paper-scale phenomenon: a
scale-14 R-MAT frontier jumps from a handful of vertices straight to ~10%
of the graph, while a scale-32 ramp passes through intermediate levels
(densities around 0.1-1%) — and it is exactly at those densities that the
``in_queue_summary`` filter and its granularity trade-off (Fig. 16)
operate.  This module therefore computes the level structure analytically
and synthesizes a :class:`~repro.core.counts.RunCounts` that the standard
timing assembler can price.

Two ingredients, both exact for R-MAT up to configuration-model mixing:

* **Degree distribution.**  An endpoint of a random R-MAT edge lands on a
  vertex whose id has ``z`` zero bits with probability
  ``(a+b)^z (c+d)^(scale-z)`` per bit pattern; there are ``C(scale, z)``
  such vertices.  Degrees within class ``z`` are Poisson with rate
  ``2 * M * (a+b)^z * (c+d)^(scale-z)``.  This reproduces the heavy tail
  and the isolated-vertex mass at any scale with ``scale + 1`` classes.

* **Level recursion.**  On the configuration model, an undiscovered
  vertex of class ``z`` is discovered by the current frontier with
  probability ``1 - exp(-lambda_z * q)`` where ``q`` is the fraction of
  edge endpoints lying in the frontier.  Iterating from the root yields
  frontier vertex/edge fractions per level; the hybrid alpha/beta rule is
  applied to the analytic quantities to decide directions, mirroring the
  engine.

Per-level bottom-up expectations follow in closed form (early-exit scan
of a Poisson-degree vertex against an independent frontier):

* examined edges per candidate: ``(1 - exp(-lambda * q)) / q``;
* summary filtering: an examined non-hit edge reads ``in_queue`` only if
  its summary block is non-empty, probability ``1 - exp(-(g-1) * p)``
  with ``p`` the vertex-uniform frontier density and ``g`` the
  granularity — the Fig. 16 mechanism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.bitmap import summary_words_for
from repro.core.config import BFSConfig, TraversalMode
from repro.core.counts import Direction, LevelCounts, RunCounts
from repro.errors import ConfigError
from repro.graph.rmat import GRAPH500_EDGEFACTOR, RmatParams
from repro.util import bitops

__all__ = [
    "DegreeClasses",
    "rmat_degree_classes",
    "mean_root_lambda",
    "typical_root_lambda",
    "AnalyticLevel",
    "simulate_level_profile",
    "synthesize_run_counts",
]


@dataclass(frozen=True)
class DegreeClasses:
    """R-MAT degree mixture: class ``z`` has ``count[z]`` vertices whose
    degrees are Poisson with rate ``lam[z]``."""

    scale: int
    edgefactor: int
    count: np.ndarray  # float64, may exceed 2**53 fractionally — fine
    lam: np.ndarray

    @property
    def num_vertices(self) -> float:
        """Total vertices at this scale."""
        return float(2**self.scale)

    @property
    def num_endpoints(self) -> float:
        """Total edge endpoints (2 * M raw edges)."""
        return 2.0 * self.edgefactor * self.num_vertices

    def mean_degree(self) -> float:
        """Mean degree over all vertices (isolated included)."""
        return float((self.count * self.lam).sum() / self.num_vertices)

    def isolated_fraction(self) -> float:
        """Expected share of degree-0 vertices."""
        return float((self.count * np.exp(-self.lam)).sum() / self.num_vertices)


def rmat_degree_classes(
    scale: int,
    edgefactor: int = GRAPH500_EDGEFACTOR,
    params: RmatParams = RmatParams(),
) -> DegreeClasses:
    """Closed-form degree mixture of an R-MAT graph at ``scale``."""
    if scale < 1:
        raise ConfigError("scale must be >= 1")
    row_heavy = params.a + params.b  # marginal probability of a 0 row bit
    row_light = params.c + params.d
    z = np.arange(scale + 1, dtype=np.float64)
    # log C(scale, z) via lgamma for numerical stability at scale 32+.
    log_comb = (
        math.lgamma(scale + 1)
        - np.array([math.lgamma(v + 1) for v in z])
        - np.array([math.lgamma(scale - v + 1) for v in z])
    )
    count = np.exp(log_comb)
    m = edgefactor * (2.0**scale)
    log_rate = (
        math.log(2.0 * m)
        + z * math.log(row_heavy)
        + (scale - z) * math.log(row_light)
    )
    lam = np.exp(log_rate)
    return DegreeClasses(
        scale=scale, edgefactor=edgefactor, count=count, lam=lam
    )


@dataclass
class AnalyticLevel:
    """One level of the analytic profile (all quantities are absolute
    expected counts for the whole graph)."""

    level: int
    direction: str
    frontier_vertices: float
    frontier_edge_endpoints: float  # edge endpoints incident to the frontier
    candidates: float  # BU: undiscovered, degree > 0 vertices scanned
    examined_edges: float
    discovered: float
    frontier_density: float  # frontier_vertices / N (vertex-uniform)
    hit_fraction: float  # q: P(random edge endpoint is in the frontier)


def mean_root_lambda(classes: DegreeClasses) -> float:
    """Expected degree of a Graph500 root (uniform over degree >= 1).

    Note the heavy tail makes this much larger than the *typical* root's
    degree; :func:`typical_root_lambda` is the default for profiles.
    """
    nonisolated = classes.count * (1.0 - np.exp(-classes.lam))
    total = nonisolated.sum()
    # E[deg | deg >= 1] per class = lam / (1 - exp(-lam)).
    mean = (nonisolated * classes.lam / (1.0 - np.exp(-classes.lam))).sum()
    return float(mean / total)


def typical_root_lambda(classes: DegreeClasses) -> float:
    """Degree of the typical Graph500 root.

    Roots are sampled uniformly over degree >= 1 vertices, so most have
    near-median degree (around the edgefactor), not the degree-weighted
    mean which the hubs dominate.  The choice fixes where the hybrid
    switch lands in the ramp, and with it the first bottom-up frontier
    density that drives the summary-granularity trade-off (Fig. 16)."""
    return float(classes.edgefactor)


def simulate_level_profile(
    classes: DegreeClasses,
    config: BFSConfig,
    root_lambda: float | None = None,
    max_levels: int = 64,
) -> list[AnalyticLevel]:
    """Run the epidemic level recursion and the hybrid direction policy."""
    n = classes.num_vertices
    endpoints = classes.num_endpoints
    if root_lambda is None:
        root_lambda = typical_root_lambda(classes)

    undiscovered = classes.count.astype(np.float64).copy()
    # Frontier state: expected frontier vertices per class.  The root is
    # one vertex of degree ~root_lambda; approximate its class mix by the
    # single virtual vertex with rate root_lambda.
    frontier = np.zeros_like(undiscovered)
    frontier_vertices = 1.0
    frontier_endpoints = root_lambda
    # Remove the root from its (approximate) class: negligible at scale.

    levels: list[AnalyticLevel] = []
    direction = Direction.TOP_DOWN
    finished_bottom_up = False
    unexplored_endpoints = endpoints

    for level in range(max_levels):
        if frontier_vertices < 0.5:
            break
        # Hybrid direction rule on the analytic quantities (mirrors
        # repro.core.hybrid.DirectionPolicy).
        if config.mode is TraversalMode.TOP_DOWN:
            direction = Direction.TOP_DOWN
        elif config.mode is TraversalMode.BOTTOM_UP:
            direction = Direction.BOTTOM_UP
        elif direction == Direction.TOP_DOWN:
            if (
                not finished_bottom_up
                and frontier_endpoints > unexplored_endpoints / config.alpha
            ):
                direction = Direction.BOTTOM_UP
        else:
            if frontier_vertices < n / config.beta:
                direction = Direction.TOP_DOWN
                finished_bottom_up = True

        q = min(1.0, frontier_endpoints / endpoints)
        p = min(1.0, frontier_vertices / n)

        # Discovery probabilities per class.
        discover_prob = 1.0 - np.exp(-classes.lam * q)
        new_frontier = undiscovered * discover_prob
        discovered = float(new_frontier.sum())

        if direction == Direction.TOP_DOWN:
            candidates = 0.0
            examined = frontier_endpoints
        else:
            nonisolated = undiscovered * (1.0 - np.exp(-classes.lam))
            candidates = float(nonisolated.sum())
            if q > 0:
                examined = float(
                    (undiscovered * (1.0 - np.exp(-classes.lam * q))).sum() / q
                )
            else:
                examined = 0.0

        levels.append(
            AnalyticLevel(
                level=level,
                direction=direction,
                frontier_vertices=frontier_vertices,
                frontier_edge_endpoints=frontier_endpoints,
                candidates=candidates,
                examined_edges=examined,
                discovered=discovered,
                frontier_density=p,
                hit_fraction=q,
            )
        )

        undiscovered = undiscovered - new_frontier
        frontier = new_frontier
        frontier_vertices = discovered
        frontier_endpoints = float((new_frontier * classes.lam).sum())
        unexplored_endpoints = float((undiscovered * classes.lam).sum())

    return levels


def _summary_pass_fraction(p: float, granularity: int) -> float:
    """Probability that an examined *non-hit* edge still reads in_queue:
    its summary block (g - 1 other positions at vertex-uniform frontier
    density p) is non-empty."""
    return 1.0 - math.exp(-(granularity - 1) * p)


def synthesize_run_counts(
    scale: int,
    config: BFSConfig,
    num_ranks: int,
    edgefactor: int = GRAPH500_EDGEFACTOR,
    params: RmatParams = RmatParams(),
    root_lambda: float | None = None,
) -> tuple[RunCounts, int]:
    """Build a priceable :class:`RunCounts` from the analytic profile.

    Returns ``(counts, num_directed_arcs)``; counts are balanced across
    ranks (the analytic model has no sampling noise, so stall is zero by
    construction — absolute-scale runs are well balanced, see the
    1/sqrt(size) argument in :meth:`LevelCounts.scaled`).
    """
    classes = rmat_degree_classes(scale, edgefactor, params)
    profile = simulate_level_profile(classes, config, root_lambda)
    n = int(2**scale)
    # Deduplicated undirected edges ~ raw minus self-loop/duplicate mass;
    # for Graph500 parameters the reduction is small — keep raw counts, as
    # the paper quotes raw edge counts (64 G at scale 32) too.
    num_arcs = 2 * edgefactor * n

    counts = RunCounts(num_vertices=n, num_ranks=num_ranks)
    summary_words = summary_words_for(n, config.granularity)
    inq_part_words = bitops.words_for_bits(n) / num_ranks

    def spread(total: float) -> np.ndarray:
        return np.full(num_ranks, max(0.0, total) / num_ranks).astype(np.int64)

    for lvl in profile:
        lc = LevelCounts(level=lvl.level, direction=lvl.direction)
        lc.allreduces = 3
        lc.frontier_local = spread(lvl.frontier_vertices)
        lc.discovered = spread(lvl.discovered)
        lc.examined_edges = spread(lvl.examined_edges)
        if lvl.direction == Direction.TOP_DOWN:
            lc.candidates = spread(0)
            lc.inqueue_reads = spread(0)
            pair_bytes = 16.0 * lvl.discovered
            per_pair = pair_bytes / max(1, num_ranks * num_ranks)
            lc.td_send_bytes = np.full(
                (num_ranks, num_ranks), per_pair
            ).astype(np.int64)
        else:
            lc.candidates = spread(lvl.candidates)
            if config.use_summary:
                hits = lvl.discovered
                misses = max(0.0, lvl.examined_edges - hits)
                pass_frac = _summary_pass_fraction(
                    lvl.frontier_density, config.granularity
                )
                reads = hits + misses * pass_frac
            else:
                reads = lvl.examined_edges
            lc.inqueue_reads = spread(reads)
            lc.inq_part_words = inq_part_words
            if config.use_summary:
                lc.summary_part_words = summary_words / num_ranks
        counts.levels.append(lc)

    # Mark representation switches, as the engine would.
    prev = None
    for lc in counts.levels:
        lc.switched = prev is not None and prev != lc.direction
        prev = lc.direction

    reached = sum(lvl.discovered for lvl in profile)
    reached_endpoints = sum(
        lvl.frontier_edge_endpoints for lvl in profile
    )
    counts.visited_vertices = int(reached)
    counts.traversed_edges = int(min(num_arcs // 2, reached_endpoints / 2))
    return counts, num_arcs
