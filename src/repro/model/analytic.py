"""End-to-end analytic evaluation: level-profile model -> machine pricing.

This is the second prediction mode (besides count extrapolation from a
functional run): no graph is materialized at all, so it reaches scale 32+
in milliseconds.  The experiments use it where the functional ramp is too
compressed to show the effect under study (the Fig. 16 granularity sweep)
and to cross-validate the extrapolation mode (ablation benches).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BFSConfig
from repro.core.counts import RunCounts
from repro.core.timing import (
    BfsTiming,
    CostConstants,
    StructureSizes,
    assemble,
)
from repro.graph.rmat import GRAPH500_EDGEFACTOR, RmatParams
from repro.machine.spec import ClusterSpec
from repro.model.levelprofile import synthesize_run_counts
from repro.mpi.mapping import ProcessMapping
from repro.mpi.simcomm import SimComm

__all__ = ["AnalyticResult", "analytic_graph500"]


@dataclass
class AnalyticResult:
    """Analytic-mode evaluation of one configuration at one scale."""

    config: BFSConfig
    scale: int
    counts: RunCounts
    timing: BfsTiming

    @property
    def seconds(self) -> float:
        """Simulated wall time of the traversal."""
        return self.timing.total_seconds

    @property
    def traversed_edges(self) -> int:
        """TEPS numerator implied by the analytic profile."""
        return self.counts.traversed_edges

    @property
    def teps(self) -> float:
        """Traversed edges per simulated second."""
        if self.seconds <= 0:
            return 0.0
        return self.traversed_edges / self.seconds

    def mean_bu_comm_per_level(self) -> float:
        """Average cost of one bottom-up communication phase (ns)."""
        times = [
            lt.comm_ns
            for lt in self.timing.levels
            if lt.direction == "bottom_up"
        ]
        return float(sum(times) / len(times)) if times else 0.0


def analytic_graph500(
    cluster: ClusterSpec,
    config: BFSConfig,
    scale: int,
    edgefactor: int = GRAPH500_EDGEFACTOR,
    params: RmatParams = RmatParams(),
    root_lambda: float | None = None,
    constants: CostConstants = CostConstants(),
) -> AnalyticResult:
    """Price one BFS at ``2**scale`` vertices without materializing it."""
    ppn = config.resolve_ppn(cluster)
    mapping = ProcessMapping(cluster, ppn, config.binding)
    comm = SimComm(cluster, mapping)
    counts, num_arcs = synthesize_run_counts(
        scale,
        config,
        mapping.num_ranks,
        edgefactor=edgefactor,
        params=params,
        root_lambda=root_lambda,
    )
    sizes = StructureSizes(
        num_vertices=counts.num_vertices,
        num_arcs=num_arcs,
        num_ranks=counts.num_ranks,
        granularity=config.granularity,
    )
    timing = assemble(counts, comm, config, sizes, constants)
    return AnalyticResult(
        config=config, scale=scale, counts=counts, timing=timing
    )
