"""Sensitivity analysis of the calibration constants.

DESIGN.md §6 lists the handful of machine constants that are not given
by the paper and were calibrated once against its headline ratios.  This
module quantifies how much each of the paper's qualitative claims moves
when one constant is perturbed — the standard robustness check for a
calibrated simulator.  ``benchmarks/bench_sensitivity.py`` runs it and
asserts that the claims survive ±50% perturbations.
"""

from __future__ import annotations

import dataclasses as dc
from dataclasses import dataclass
from typing import Callable

from repro.core.config import BFSConfig
from repro.errors import ConfigError
from repro.machine.spec import ClusterSpec, paper_cluster
from repro.model.analytic import analytic_graph500

__all__ = [
    "CALIBRATION_CONSTANTS",
    "ClaimOutcome",
    "perturb",
    "evaluate_claims",
    "sensitivity_sweep",
]

# name -> (getter description, setter producing a perturbed cluster)
def _set_socket(cluster: ClusterSpec, **kw) -> ClusterSpec:
    node = cluster.node
    return dc.replace(
        cluster, node=dc.replace(node, socket=dc.replace(node.socket, **kw))
    )


def _set_qpi(cluster: ClusterSpec, **kw) -> ClusterSpec:
    node = cluster.node
    return dc.replace(
        cluster, node=dc.replace(node, qpi=dc.replace(node.qpi, **kw))
    )


CALIBRATION_CONSTANTS: dict[str, Callable[[ClusterSpec, float], ClusterSpec]] = {
    "dram_latency_ns": lambda c, f: _set_socket(
        c, dram_latency_ns=c.node.socket.dram_latency_ns * f
    ),
    "tlb_penalty_ns": lambda c, f: _set_socket(
        c, tlb_penalty_ns=c.node.socket.tlb_penalty_ns * f
    ),
    "cache_usable_fraction": lambda c, f: _set_socket(
        c, cache_usable_fraction=min(1.0, c.node.socket.cache_usable_fraction * f)
    ),
    "hop_latency_ns": lambda c, f: _set_qpi(
        c, hop_latency_ns=c.node.qpi.hop_latency_ns * f
    ),
    "congestion_per_socket": lambda c, f: _set_qpi(
        c, congestion_per_socket=c.node.qpi.congestion_per_socket * f
    ),
    "mlp": lambda c, f: _set_socket(c, mlp=max(0.5, c.node.socket.mlp * f)),
}


def perturb(cluster: ClusterSpec, constant: str, factor: float) -> ClusterSpec:
    """The cluster with one calibration constant multiplied by ``factor``."""
    try:
        setter = CALIBRATION_CONSTANTS[constant]
    except KeyError:
        known = ", ".join(sorted(CALIBRATION_CONSTANTS))
        raise ConfigError(
            f"unknown calibration constant {constant!r}; known: {known}"
        ) from None
    if factor <= 0:
        raise ConfigError("perturbation factor must be positive")
    return setter(cluster, factor)


@dataclass(frozen=True)
class ClaimOutcome:
    """One qualitative paper claim evaluated on one machine."""

    numa_speedup: float  # ppn=8 over ppn=1 (paper: 1.53x)
    comm_chain_monotone: bool  # each optimization reduces total time
    overall_speedup: float  # full stack over ppn=1 (paper: 2.44x)

    @property
    def claims_hold(self) -> bool:
        """True when every qualitative paper claim holds."""
        return (
            self.numa_speedup > 1.0
            and self.comm_chain_monotone
            and self.overall_speedup > self.numa_speedup
        )


def evaluate_claims(cluster: ClusterSpec, scale: int = 32) -> ClaimOutcome:
    """The paper's headline claims on one machine (analytic mode)."""
    chain = [
        BFSConfig.original_ppn1(),
        BFSConfig.original_ppn8(),
        BFSConfig.share_in_queue_variant(),
        BFSConfig.share_all_variant(),
        BFSConfig.par_allgather_variant(),
        BFSConfig.granularity_variant(256),
    ]
    seconds = [analytic_graph500(cluster, cfg, scale).seconds for cfg in chain]
    monotone = all(a >= b * 0.999 for a, b in zip(seconds[1:], seconds[2:]))
    return ClaimOutcome(
        numa_speedup=seconds[0] / seconds[1],
        comm_chain_monotone=monotone,
        overall_speedup=seconds[0] / seconds[-1],
    )


def sensitivity_sweep(
    factors: tuple[float, ...] = (0.5, 1.0, 1.5),
    scale: int = 32,
    nodes: int = 16,
) -> dict[str, dict[float, ClaimOutcome]]:
    """Evaluate the claims under per-constant perturbations."""
    base = paper_cluster(nodes=nodes)
    out: dict[str, dict[float, ClaimOutcome]] = {}
    for constant in CALIBRATION_CONSTANTS:
        out[constant] = {}
        for factor in factors:
            cluster = perturb(base, constant, factor)
            out[constant][factor] = evaluate_claims(cluster, scale)
    return out
