"""Integration tests: the distributed hybrid BFS against networkx ground
truth, across graph families, cluster shapes and every optimization
variant."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BFSConfig, BFSEngine, CommConfig, TraversalMode, paper_variants
from repro.core.validate import validate_parent_tree
from repro.errors import ConfigError, GraphError
from repro.graph import (
    binary_tree_graph,
    erdos_renyi_graph,
    from_edge_arrays,
    grid_graph,
    rmat_graph,
)
from repro.machine import paper_cluster
from repro.mpi import BindingPolicy


def to_networkx(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    for v in range(graph.num_vertices):
        for u in graph.neighbors(v):
            g.add_edge(v, int(u))
    return g


def reference_levels(graph, root):
    g = to_networkx(graph)
    dist = nx.single_source_shortest_path_length(g, root)
    out = np.full(graph.num_vertices, -1, dtype=np.int64)
    for v, d in dist.items():
        out[v] = d
    return out


def check_against_networkx(graph, cluster, config, root):
    engine = BFSEngine(graph, cluster, config)
    res = engine.run(root)
    levels = validate_parent_tree(graph, root, res.parent)
    expected = reference_levels(graph, root)
    assert np.array_equal(levels, expected), "BFS levels differ from networkx"
    return res


def padded(graph_fn, n, *args, **kwargs):
    """Build a graph padded to a 64*ranks-aligned vertex count."""
    return graph_fn(n, *args, **kwargs)


class TestEngineCorrectness:
    def test_grid_two_nodes(self):
        g = grid_graph(16, 32)  # 512 vertices, multiple of 64*8
        cluster = paper_cluster(nodes=1)
        res = check_against_networkx(g, cluster, BFSConfig.original_ppn8(), 0)
        assert res.visited == 512
        assert res.levels == 16 + 32 - 1

    def test_binary_tree(self):
        g = binary_tree_graph(8)  # 511 vertices -> not aligned; pad below
        src = np.repeat(np.arange(1, 511) - 1, 0)  # unused
        # Rebuild with one padding vertex to reach 512.
        edges_parent = (np.arange(1, 511) - 1) // 2
        g = from_edge_arrays(512, edges_parent, np.arange(1, 511))
        cluster = paper_cluster(nodes=1)
        res = check_against_networkx(g, cluster, BFSConfig.original_ppn8(), 0)
        assert res.levels == 9

    def test_rmat_all_paper_variants(self):
        g = rmat_graph(scale=12, seed=7)
        cluster = paper_cluster(nodes=2)
        root = int(np.argmax(g.degrees()))
        reference = reference_levels(g, root)
        for name, cfg in paper_variants().items():
            engine = BFSEngine(g, cluster, cfg)
            res = engine.run(root)
            levels = validate_parent_tree(g, root, res.parent)
            assert np.array_equal(levels, reference), name

    def test_pure_top_down_and_bottom_up_agree(self):
        g = rmat_graph(scale=11, seed=9)
        cluster = paper_cluster(nodes=1)
        root = int(np.argmax(g.degrees()))
        expected = reference_levels(g, root)
        for mode in TraversalMode:
            cfg = BFSConfig(mode=mode)
            res = BFSEngine(g, cluster, cfg).run(root)
            levels = validate_parent_tree(g, root, res.parent)
            assert np.array_equal(levels, expected), mode

    def test_ppn1_policies(self):
        g = rmat_graph(scale=11, seed=5)
        cluster = paper_cluster(nodes=2)
        root = int(np.argmax(g.degrees()))
        expected = reference_levels(g, root)
        for policy in (BindingPolicy.INTERLEAVE, BindingPolicy.NOFLAG):
            cfg = BFSConfig(ppn=1, binding=policy)
            res = BFSEngine(g, cluster, cfg).run(root)
            assert np.array_equal(
                validate_parent_tree(g, root, res.parent), expected
            )

    def test_disconnected_component_only(self):
        # Two components: 0-1-2 ... and an unreachable clique.
        src = np.array([0, 1, 60, 61, 62])
        dst = np.array([1, 2, 61, 62, 63])
        g = from_edge_arrays(64, src, dst)
        cluster = paper_cluster(nodes=1)
        cfg = BFSConfig(ppn=1, binding=BindingPolicy.INTERLEAVE)
        res = BFSEngine(g, cluster, cfg).run(0)
        assert res.visited == 3
        assert res.parent[60] == -1
        validate_parent_tree(g, 0, res.parent)

    def test_root_only_frontier(self):
        # Root with no neighbours in its component beyond itself.
        g = from_edge_arrays(64, [0], [1])
        cluster = paper_cluster(nodes=1)
        cfg = BFSConfig(ppn=1, binding=BindingPolicy.INTERLEAVE)
        res = BFSEngine(g, cluster, cfg).run(0)
        assert res.visited == 2
        assert res.levels == 2

    def test_various_granularities_same_tree(self):
        g = rmat_graph(scale=12, seed=3)
        cluster = paper_cluster(nodes=2)
        root = int(np.argmax(g.degrees()))
        trees = []
        for gran in (64, 256, 1024):
            cfg = BFSConfig.granularity_variant(gran)
            res = BFSEngine(g, cluster, cfg).run(root)
            trees.append(
                validate_parent_tree(g, root, res.parent)
            )
        assert np.array_equal(trees[0], trees[1])
        assert np.array_equal(trees[0], trees[2])

    def test_no_summary_variant(self):
        g = rmat_graph(scale=11, seed=2)
        cluster = paper_cluster(nodes=1)
        root = int(np.argmax(g.degrees()))
        cfg = BFSConfig(comm=CommConfig(use_summary=False))
        res = BFSEngine(g, cluster, cfg).run(root)
        validate_parent_tree(g, root, res.parent)

    def test_alignment_requirement(self):
        g = erdos_renyi_graph(100, 0.1, seed=1)  # 100 not multiple of 512
        with pytest.raises(ConfigError):
            BFSEngine(g, paper_cluster(nodes=1), BFSConfig.original_ppn8())

    def test_root_out_of_range(self):
        g = grid_graph(8, 8)
        engine = BFSEngine(
            g,
            paper_cluster(nodes=1),
            BFSConfig(ppn=1, binding=BindingPolicy.INTERLEAVE),
        )
        with pytest.raises(GraphError):
            engine.run(64)

    def test_engine_reusable_across_roots(self):
        g = rmat_graph(scale=11, seed=4)
        engine = BFSEngine(
            g, paper_cluster(nodes=1), BFSConfig.original_ppn8()
        )
        roots = np.flatnonzero(g.degrees() > 0)[:3]
        for root in roots:
            res = engine.run(int(root))
            validate_parent_tree(g, int(root), res.parent)


class TestEngineAccounting:
    def test_three_phase_structure_on_rmat(self):
        """R-MAT runs follow the paper's top-down / bottom-up / top-down
        phase sequence."""
        g = rmat_graph(scale=13, seed=3)
        cluster = paper_cluster(nodes=2)
        root = int(np.argmax(g.degrees()))
        res = BFSEngine(g, cluster, BFSConfig.original_ppn8()).run(root)
        dirs = [lvl.direction for lvl in res.counts.levels]
        assert "bottom_up" in dirs
        first_bu = dirs.index("bottom_up")
        last_bu = len(dirs) - 1 - dirs[::-1].index("bottom_up")
        assert all(d == "bottom_up" for d in dirs[first_bu : last_bu + 1])
        assert all(d == "top_down" for d in dirs[:first_bu])

    def test_traversed_edges_match_component(self):
        g = rmat_graph(scale=11, seed=8)
        cluster = paper_cluster(nodes=1)
        root = int(np.argmax(g.degrees()))
        res = BFSEngine(g, cluster, BFSConfig.original_ppn8()).run(root)
        reached = res.parent >= 0
        expected = int(g.degrees()[reached].sum()) // 2
        assert res.traversed_edges == expected
        assert res.teps > 0

    def test_counts_validate(self):
        g = rmat_graph(scale=11, seed=8)
        res = BFSEngine(
            g, paper_cluster(nodes=1), BFSConfig.original_ppn8()
        ).run(int(np.argmax(g.degrees())))
        res.counts.validate()
        assert res.counts.num_levels == res.levels
        assert res.counts.total_examined_edges() > 0

    def test_timing_positive_and_consistent(self):
        g = rmat_graph(scale=12, seed=8)
        res = BFSEngine(
            g, paper_cluster(nodes=2), BFSConfig.original_ppn8()
        ).run(int(np.argmax(g.degrees())))
        bd = res.timing.breakdown
        assert res.seconds > 0
        total_from_levels = sum(lt.total_ns for lt in res.timing.levels)
        assert total_from_levels == pytest.approx(bd.total, rel=1e-9)
        assert bd.bu_comm > 0 and bd.bu_compute > 0

    def test_summary_reads_depend_on_granularity(self):
        """Raising granularity increases in_queue reads (fewer zero summary
        bits filter them) — the measured Fig. 16 mechanism."""
        g = rmat_graph(scale=13, seed=6)
        cluster = paper_cluster(nodes=1)
        root = int(np.argmax(g.degrees()))
        reads = {}
        for gran in (64, 1024):
            cfg = BFSConfig.granularity_variant(gran)
            res = BFSEngine(g, cluster, cfg).run(root)
            reads[gran] = sum(
                int(lvl.inqueue_reads.sum()) for lvl in res.counts.levels
            )
        assert reads[1024] >= reads[64]


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    p=st.floats(min_value=0.02, max_value=0.3),
)
def test_property_engine_matches_networkx_on_random_graphs(seed, p):
    g = erdos_renyi_graph(128, p, seed=seed)
    deg = g.degrees()
    if deg.max() == 0:
        return
    root = int(np.argmax(deg))
    cluster = paper_cluster(nodes=1)
    cfg = BFSConfig(ppn=2, binding=BindingPolicy.BIND_TO_SOCKET)
    res = BFSEngine(g, cluster, cfg).run(root)
    levels = validate_parent_tree(g, root, res.parent)
    assert np.array_equal(levels, reference_levels(g, root))
