"""Tests for the terminal bar-chart renderer."""

import pytest

from repro.util import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_basic_render(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10, unit="x")
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a  |")
        assert "2 x" in lines[1]

    def test_max_value_fills_width(self):
        out = bar_chart(["m"], [5.0], width=8)
        assert "████████" in out

    def test_zero_values(self):
        out = bar_chart(["z"], [0.0], width=8)
        assert "█" not in out

    def test_title(self):
        out = bar_chart(["a"], [1.0], title="T:")
        assert out.splitlines()[0] == "T:"

    def test_proportionality(self):
        out = bar_chart(["half", "full"], [1.0, 2.0], width=10)
        half, full = out.splitlines()
        assert half.count("█") <= full.count("█") // 2 + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)

    def test_empty(self):
        assert bar_chart([], []) == ""


class TestGroupedBarChart:
    def test_basic(self):
        out = grouped_bar_chart(
            ["g1", "g2"],
            {"s1": [1.0, 2.0], "s2": [3.0, 4.0]},
            width=10,
        )
        lines = out.splitlines()
        assert lines[0] == "g1:"
        assert len(lines) == 6

    def test_ragged_series_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["g1"], {"s": [1.0, 2.0]})

    def test_global_max_normalization(self):
        out = grouped_bar_chart(
            ["g1", "g2"], {"s": [1.0, 4.0]}, width=8
        )
        lines = [l for l in out.splitlines() if "|" in l]
        assert lines[1].count("█") == 8
        assert lines[0].count("█") == 2
