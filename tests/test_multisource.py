"""Batched multi-source BFS: bit-identity against sequential runs.

The contract under test (:mod:`repro.core.multisource`): a batch of K
sources produces, for every source, *exactly* what a sequential
``BFSEngine.run`` produces — parent tree, per-level per-rank counts,
byte accounting, and therefore priced simulated seconds.  The sweep
covers both python kernel backends, the sharing variants, frontier
codecs, summary on/off, and batch widths 1, 3 and the full 64 lanes.
"""

import numpy as np
import pytest

from repro.core.config import BFSConfig, CommConfig
from repro.core.engine import BFSEngine
from repro.core.multisource import MultiSourceEngine, run_bfs_batch
from repro.errors import ConfigError, GraphError
from repro.graph.rmat import rmat_graph
from repro.machine.spec import paper_cluster

SCALE = 10

ARRAY_FIELDS = (
    "frontier_local",
    "discovered",
    "candidates",
    "examined_edges",
    "inqueue_reads",
)
SCALAR_FIELDS = (
    "direction",
    "allreduces",
    "switched",
    "codec",
    "inq_part_words",
    "summary_part_words",
    "inq_raw_total_bytes",
    "inq_wire_total_bytes",
    "summary_raw_total_bytes",
    "summary_wire_total_bytes",
    "summary_wire_part_bytes",
)


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=SCALE, edgefactor=16, seed=7)


@pytest.fixture(scope="module")
def cluster():
    return paper_cluster(nodes=2)


def assert_identical(seq, bat, context):
    """One sequential result vs. the same source's batched result."""
    assert np.array_equal(seq.parent, bat.parent), context
    assert seq.levels == bat.levels, context
    assert seq.counts.visited_vertices == bat.counts.visited_vertices
    assert seq.counts.traversed_edges == bat.counts.traversed_edges
    assert len(seq.counts.levels) == len(bat.counts.levels), context
    for i, (sl, bl) in enumerate(zip(seq.counts.levels, bat.counts.levels)):
        for f in SCALAR_FIELDS:
            assert getattr(sl, f) == getattr(bl, f), (context, i, f)
        for f in ARRAY_FIELDS:
            assert np.array_equal(getattr(sl, f), getattr(bl, f)), (
                context,
                i,
                f,
            )
        if sl.td_send_bytes is None or bl.td_send_bytes is None:
            assert sl.td_send_bytes is None and bl.td_send_bytes is None
        else:
            assert np.array_equal(sl.td_send_bytes, bl.td_send_bytes)
        if (
            sl.inq_wire_part_bytes is not None
            or bl.inq_wire_part_bytes is not None
        ):
            assert np.allclose(
                sl.inq_wire_part_bytes, bl.inq_wire_part_bytes
            ), (context, i)
    # The headline acceptance: priced simulated time is bit-identical.
    assert seq.timing.total_seconds == bat.timing.total_seconds, context
    assert seq.seconds == bat.seconds, context


def run_and_compare(graph, cluster, config, roots, label):
    eng = BFSEngine(graph, cluster, config)
    batch = MultiSourceEngine(graph, cluster, config).run_batch(roots)
    assert len(batch) == len(roots)
    for root, bat in zip(roots, batch):
        assert_identical(eng.run(root), bat, (label, root))


def roots_for(graph, k, seed=3):
    rng = np.random.default_rng(seed)
    return [int(r) for r in rng.integers(0, graph.num_vertices, k)]


CONFIGS = {
    "original": lambda kern: BFSConfig(kernel=kern),
    "no-summary": lambda kern: BFSConfig(
        kernel=kern, comm=CommConfig(use_summary=False)
    ),
    "share-all": lambda kern: BFSConfig(
        kernel=kern, comm=CommConfig.shared_all()
    ),
    "parallel-sieve": lambda kern: BFSConfig(
        kernel=kern, comm=CommConfig.parallel(codec="sieve")
    ),
    "rle": lambda kern: BFSConfig(
        kernel=kern, comm=CommConfig(codec="rle-bitmap")
    ),
    "granularity-256": lambda kern: BFSConfig(
        kernel=kern, comm=CommConfig(summary_granularity=256)
    ),
    "degree-balanced": lambda kern: BFSConfig(
        kernel=kern, degree_balanced=True
    ),
}


class TestBitIdentity:
    """Batch of K == K sequential runs, over the full config sweep."""

    @pytest.mark.parametrize("kernel", ["reference", "activeset"])
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    @pytest.mark.parametrize("k", [1, 3])
    def test_sweep(self, graph, cluster, kernel, name, k):
        config = CONFIGS[name](kernel)
        roots = roots_for(graph, k, seed=5 + k)
        run_and_compare(graph, cluster, config, roots, f"{name}/{kernel}")

    def test_full_64_lane_batch(self, graph, cluster):
        config = BFSConfig(kernel="activeset")
        roots = roots_for(graph, 64, seed=11)
        run_and_compare(graph, cluster, config, roots, "64-lane")

    def test_full_64_lanes_with_codec(self, graph, cluster):
        config = BFSConfig(
            kernel="activeset", comm=CommConfig.shared_all(codec="sieve")
        )
        roots = roots_for(graph, 64, seed=13)
        run_and_compare(graph, cluster, config, roots, "64-lane-sieve")

    def test_duplicate_roots_allowed(self, graph, cluster):
        root = roots_for(graph, 1, seed=2)[0]
        config = BFSConfig(kernel="reference")
        run_and_compare(
            graph, cluster, config, [root, root, root], "duplicates"
        )

    def test_zero_degree_root(self, graph, cluster):
        degrees = graph.degrees()
        lonely = np.flatnonzero(degrees == 0)
        if lonely.size == 0:
            pytest.skip("workload has no zero-degree vertex")
        config = BFSConfig(kernel="activeset")
        run_and_compare(
            graph, cluster, config, [int(lonely[0])], "zero-degree"
        )


class TestBatchValidation:
    """Input validation and the engine's public surface."""

    def test_more_than_64_sources_rejected(self, graph, cluster):
        ms = MultiSourceEngine(graph, cluster)
        with pytest.raises(ConfigError, match="64"):
            ms.run_batch(list(range(65)))

    def test_empty_batch_rejected(self, graph, cluster):
        ms = MultiSourceEngine(graph, cluster)
        with pytest.raises(GraphError, match="at least one"):
            ms.run_batch([])

    def test_out_of_range_root_rejected(self, graph, cluster):
        ms = MultiSourceEngine(graph, cluster)
        with pytest.raises(GraphError, match="out of range"):
            ms.run_batch([graph.num_vertices])

    def test_engine_reusable_across_batches(self, graph, cluster):
        ms = MultiSourceEngine(graph, cluster)
        a = ms.run_batch(roots_for(graph, 2, seed=1))
        b = ms.run_batch(roots_for(graph, 2, seed=1))
        for ra, rb in zip(a, b):
            assert np.array_equal(ra.parent, rb.parent)
            assert ra.seconds == rb.seconds

    def test_validate_flag_runs_graph500_checks(self, graph, cluster):
        ms = MultiSourceEngine(graph, cluster)
        ms.run_batch(roots_for(graph, 2, seed=4), validate=True)

    def test_run_bfs_batch_convenience(self, graph):
        roots = roots_for(graph, 2, seed=6)
        results = run_bfs_batch(graph, roots)
        seq = BFSEngine(
            graph, paper_cluster(nodes=1), BFSConfig.original_ppn8()
        )
        for root, bat in zip(roots, results):
            assert_identical(seq.run(root), bat, ("convenience", root))

    def test_shares_prepared_graph(self, graph, cluster):
        ms = MultiSourceEngine(graph, cluster)
        assert ms.prepared is ms.engine.prepared
        ms2 = MultiSourceEngine(graph, cluster, prepared=ms.prepared)
        assert ms2.prepared is ms.prepared


class TestCooperativeCancel:
    """The engine-level cancel hook the serving deadline path uses."""

    def test_cancelled_token_stops_before_any_level(self, graph, cluster):
        from repro.errors import DeadlineExceededError
        from repro.serve.resilience import CancelToken

        ms = MultiSourceEngine(graph, cluster)
        token = CancelToken()
        token.cancel()
        with pytest.raises(DeadlineExceededError) as err:
            ms.run_batch(roots_for(graph, 2, seed=3), cancel=token)
        assert "batch round" in err.value.context["where"]

    def test_mid_traversal_cancel_stops_between_levels(
        self, graph, cluster
    ):
        from repro.errors import DeadlineExceededError
        from repro.serve.resilience import CancelToken

        # A clock the test advances: the first check (round 0) passes,
        # every later one sees the deadline expired.
        ticks = [0.0]

        def clock():
            ticks[0] += 1.0
            return ticks[0]

        ms = MultiSourceEngine(graph, cluster)
        token = CancelToken(deadline=2.5, clock=clock)
        with pytest.raises(DeadlineExceededError):
            ms.run_batch(roots_for(graph, 2, seed=3), cancel=token)

    def test_none_cancel_is_the_default_path(self, graph, cluster):
        ms = MultiSourceEngine(graph, cluster)
        roots = roots_for(graph, 2, seed=3)
        with_none = ms.run_batch(roots, cancel=None)
        plain = ms.run_batch(roots)
        for a, b in zip(with_none, plain):
            assert np.array_equal(a.parent, b.parent)
            assert a.seconds == b.seconds

    def test_out_of_range_error_is_structured(self, graph, cluster):
        ms = MultiSourceEngine(graph, cluster)
        bad = graph.num_vertices + 3
        with pytest.raises(GraphError) as err:
            ms.run_batch([bad])
        assert err.value.context["vertex"] == bad
        assert err.value.context["num_vertices"] == graph.num_vertices
