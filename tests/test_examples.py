"""Smoke tests: every example script must run end to end.

Examples are executed in-process at a reduced scale so the whole module
stays fast; their printed narrative is checked for the key landmarks.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_examples_directory_complete(self):
        names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart",
            "social_network_analysis",
            "cluster_design_space",
            "granularity_tuning",
            "two_d_partitioning",
        } <= names

    def test_quickstart(self, capsys):
        load_example("quickstart").main(scale=13)
        out = capsys.readouterr().out
        assert "validation checks passed" in out
        assert "Fully optimized" in out
        assert "GTEPS" in out or "TEPS" in out

    def test_social_network_analysis(self, capsys):
        load_example("social_network_analysis").main(scale=13)
        out = capsys.readouterr().out
        assert "degrees of separation" in out
        assert "production scale" in out

    def test_cluster_design_space(self, capsys):
        load_example("cluster_design_space").main()
        out = capsys.readouterr().out
        assert "best design" in out
        assert "GTEPS" in out

    def test_granularity_tuning(self, capsys):
        mod = load_example("granularity_tuning")
        mod.measure_zero_fractions(scale=13)
        mod.tune(target_scale=30, nodes=8)
        out = capsys.readouterr().out
        assert "recommended granularity" in out
        assert "zero fraction" in out

    def test_two_d_partitioning(self, capsys):
        load_example("two_d_partitioning").main(scale=13)
        out = capsys.readouterr().out
        assert "composable" in out
        assert "2-D" in out

    def test_quickstart_optimized_wins_at_paper_scale(self, capsys):
        """The example's core message: the optimization stack beats the
        ppn=1 baseline at its target scale."""
        load_example("quickstart").main(scale=13)
        out = capsys.readouterr().out
        import re

        teps = [
            float(m)
            for m in re.findall(r"harmonic-mean TEPS : (\d+\.\d+) GTEPS", out)
        ]
        assert len(teps) == 3
        assert teps[2] > teps[0]  # optimized > ppn=1
