"""Tests for the persistent run ledger (``repro.obs.ledger``)."""

import json

import pytest

from repro.obs.ledger import (
    SCHEMA,
    LedgerRecord,
    RunLedger,
    config_fingerprint,
    record_from_chaos_report,
    record_from_perfdiff,
    records_from_benchmark_json,
)


def _record(name="fig09", teps=1e6, fingerprint="abc123", **metrics):
    merged = {"teps": teps, "simulated_seconds": 1.0 / teps}
    merged.update(metrics)
    return LedgerRecord(
        kind="experiment",
        name=name,
        ts="2026-08-06T00:00:00+00:00",
        commit="deadbee",
        fingerprint=fingerprint,
        config={"scale": 16},
        metrics=merged,
        env={"python": "3.12.0"},
    )


class TestConfigFingerprint:
    def test_stable_under_key_order(self):
        a = config_fingerprint({"scale": 16, "kernel": "activeset"})
        b = config_fingerprint({"kernel": "activeset", "scale": 16})
        assert a == b
        assert len(a) == 12

    def test_changes_with_any_axis(self):
        base = {"scale": 16, "kernel": "activeset", "codec": "raw"}
        assert config_fingerprint(base) != config_fingerprint(
            {**base, "codec": "auto"}
        )


class TestRecordRoundTrip:
    def test_as_dict_from_dict_identity(self):
        rec = _record()
        rec.attribution = {"compute_ns": {"td": 1.0}, "total_ns": 2.0}
        rec.labels = {"run": "nightly"}
        rec.extra = {"note": "x"}
        clone = LedgerRecord.from_dict(rec.as_dict())
        assert clone.as_dict() == rec.as_dict()
        assert clone.series == rec.series

    def test_labels_with_commas_and_quotes_survive_jsonl(self, tmp_path):
        """Satellite acceptance: JSONL round-trips labels containing the
        characters that break naive CSV-ish stores."""
        ledger = RunLedger(tmp_path / "ledger")
        rec = _record()
        rec.labels = {
            "note": 'commas, and "double quotes" and \'singles\'',
            "expr": "k=v,k2=v2",
            "unicode": "naïve — dash",
        }
        ledger.append(rec)
        (back,) = ledger.records()
        assert back.labels == rec.labels
        # And the stored line is a single valid JSON object.
        line = ledger.path.read_text().strip()
        assert "\n" not in line
        assert json.loads(line)["schema"] == SCHEMA

    def test_from_dict_rejects_other_schema(self):
        with pytest.raises(ValueError, match="schema"):
            LedgerRecord.from_dict({"schema": "repro.run/v0", "kind": "x"})


class TestRunLedger:
    def test_missing_ledger_reads_empty(self, tmp_path):
        ledger = RunLedger(tmp_path / "nowhere")
        assert ledger.records() == []
        assert len(ledger) == 0

    def test_append_preserves_order(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for i in range(5):
            ledger.append(_record(teps=1e6 + i))
        teps = [r.metrics["teps"] for r in ledger.records()]
        assert teps == [1e6 + i for i in range(5)]
        assert len(ledger) == 5

    def test_append_autofills_ts_and_env(self, tmp_path):
        ledger = RunLedger(tmp_path)
        rec = LedgerRecord(kind="experiment", name="fig09", ts="")
        ledger.append(rec)
        (back,) = ledger.records()
        assert back.ts  # stamped at append time
        assert back.env.get("python")
        assert back.env.get("cpu_count")

    def test_filters_and_last(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record(name="fig09", fingerprint="aaa"))
        ledger.append(_record(name="fig10", fingerprint="aaa"))
        ledger.append(_record(name="fig09", fingerprint="bbb"))
        assert len(ledger.records(name="fig09")) == 2
        assert len(ledger.records(kind="experiment")) == 3
        assert len(ledger.records(kind="benchmark")) == 0
        assert len(ledger.records(fingerprint="bbb")) == 1
        last = ledger.records(last=2)
        assert [r.fingerprint for r in last] == ["aaa", "bbb"]

    def test_series_groups_by_triple(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record(name="fig09", fingerprint="aaa"))
        ledger.append(_record(name="fig09", fingerprint="aaa"))
        ledger.append(_record(name="fig09", fingerprint="bbb"))
        grouped = ledger.series()
        assert len(grouped[("experiment", "fig09", "aaa")]) == 2
        assert len(grouped[("experiment", "fig09", "bbb")]) == 1

    def test_corrupt_line_reports_file_and_lineno(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record())
        with open(ledger.path, "a", encoding="utf-8") as fh:
            fh.write("{not json\n")
        with pytest.raises(ValueError, match=r"runs\.jsonl:2"):
            ledger.records()

    def test_env_dir_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "custom"))
        ledger = RunLedger()
        assert ledger.root == tmp_path / "custom"


class TestRecordBuilders:
    def test_from_chaos_report(self):
        report = {
            "schema": "repro.chaos/v1",
            "ok": True,
            "scale": 12,
            "nodes": 2,
            "ppn": 8,
            "seed": 0,
            "checkpoint_every": 1,
            "baseline": {"teps": 2.5e6, "seconds": 0.004},
            "scenarios": [
                {"name": "crash_early", "outcome": "recovered",
                 "overhead_pct": 12.0},
                {"name": "straggler", "outcome": "degraded",
                 "overhead_pct": 3.0},
                {"name": "broken", "outcome": "aborted"},
            ],
        }
        rec = record_from_chaos_report(report, source="r.json")
        assert rec.kind == "chaos"
        assert rec.metrics["baseline_teps"] == 2.5e6
        assert rec.metrics["scenarios_total"] == 3.0
        assert rec.metrics["scenarios_recovered"] == 1.0
        assert rec.metrics["scenarios_failed"] == 1.0
        assert rec.metrics["recovery_overhead_pct_max"] == 12.0
        assert rec.extra["scenario_overhead_pct"] == {
            "crash_early": 12.0, "straggler": 3.0,
        }
        assert rec.labels["source"] == "r.json"
        assert rec.fingerprint

    def test_from_chaos_report_rejects_other_schema(self):
        with pytest.raises(ValueError, match="chaos"):
            record_from_chaos_report({"schema": "repro.run/v1"})

    def test_from_perfdiff(self):
        verdict = {
            "schema": "repro.perfdiff/v1",
            "ok": False,
            "old": "/x/BENCH_comm.json",
            "new": "/y/BENCH_comm.json",
            "tolerance_pct": 100.0,
            "include_wall": False,
            "rows": [
                {"status": "regression"},
                {"status": "improved"},
                {"status": "incomparable"},
                {"status": "ok"},
            ],
            "regressions": [{"status": "regression"}],
        }
        rec = record_from_perfdiff(verdict, source="v.json")
        assert rec.kind == "perf-gate"
        assert rec.name == "BENCH_comm.json"
        assert rec.metrics["ok"] == 0.0
        assert rec.metrics["rows"] == 4.0
        assert rec.metrics["regressions"] == 1.0
        assert rec.metrics["improvements"] == 1.0
        assert rec.metrics["incomparable"] == 1.0

    def test_from_perfdiff_rejects_other_schema(self):
        with pytest.raises(ValueError, match="perf-diff"):
            record_from_perfdiff({"schema": "repro.chaos/v1"})

    def test_from_benchmark_json(self, tmp_path):
        doc = {
            "machine_info": {"node": "test"},
            "commit_info": {"id": "deadbeef"},
            "datetime": "2026-08-06T00:00:00+00:00",
            "benchmarks": [
                {
                    "name": "test_comm_bytes[auto]",
                    "group": None,
                    "params": None,
                    "extra_info": {
                        "codec": "auto",
                        "scale": 15,
                        "simulated_seconds": 4.0e-4,
                        "allgather_wire_bytes": 10122.0,
                        "provenance": {
                            "python": "3.12.0",
                            "hostname": "ci-runner",
                        },
                    },
                    "stats": {"min": 0.1, "mean": 0.12},
                }
            ],
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(doc))
        (rec,) = records_from_benchmark_json(path)
        assert rec.kind == "benchmark"
        assert rec.name == "test_comm_bytes[auto]"
        assert rec.commit == "deadbeef"
        assert rec.config.get("codec") == "auto"
        assert rec.metrics["simulated_seconds"] == 4.0e-4
        # The conftest-stamped provenance becomes the environment block.
        assert rec.env == {"python": "3.12.0", "hostname": "ci-runner"}
        assert rec.labels["source"] == str(path)
