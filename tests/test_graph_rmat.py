"""Tests for the R-MAT generator, partitioning, degree stats and IO."""

import numpy as np
import pytest

from repro.errors import ConfigError, GraphError
from repro.graph import (
    Partition1D,
    RmatParams,
    degree_statistics,
    generate_rmat_edges,
    load_edge_list,
    load_graph,
    rmat_graph,
    save_edge_list,
    save_graph,
)
from repro.graph.degree import sample_roots
from repro.graph.generators import star_graph


class TestRmatGenerator:
    def test_edge_count_and_range(self):
        edges = generate_rmat_edges(scale=8, edgefactor=16, seed=3)
        assert edges.num_edges == 16 * 256
        assert edges.num_vertices == 256
        assert edges.sources.min() >= 0
        assert edges.targets.max() < 256

    def test_deterministic_per_seed(self):
        e1 = generate_rmat_edges(scale=7, seed=11)
        e2 = generate_rmat_edges(scale=7, seed=11)
        assert np.array_equal(e1.sources, e2.sources)
        assert np.array_equal(e1.targets, e2.targets)

    def test_seed_changes_output(self):
        e1 = generate_rmat_edges(scale=7, seed=1)
        e2 = generate_rmat_edges(scale=7, seed=2)
        assert not np.array_equal(e1.sources, e2.sources)

    def test_skewed_degrees(self):
        """R-MAT graphs are scale-free-ish: max degree far above mean."""
        g = rmat_graph(scale=10, seed=5)
        stats = degree_statistics(g)
        assert stats.max_degree > 8 * stats.mean_degree
        assert stats.isolated_vertices > 0  # hallmark of Graph500 R-MAT

    def test_scale_zero(self):
        edges = generate_rmat_edges(scale=0, edgefactor=4)
        assert edges.num_vertices == 1
        assert edges.num_edges == 4  # all self-loops on vertex 0

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            RmatParams(a=0.9, b=0.2, c=0.2, d=0.2)
        with pytest.raises(GraphError):
            generate_rmat_edges(scale=-1)
        with pytest.raises(GraphError):
            generate_rmat_edges(scale=4, edgefactor=0)

    def test_meta_recorded(self):
        g = rmat_graph(scale=6, seed=9)
        assert g.meta["kind"] == "rmat"
        assert g.meta["scale"] == 6

    def test_permutation_spreads_hubs(self):
        """Without permutation hubs concentrate in low ids; with permutation
        the top-degree vertex is unlikely to always be vertex id 0."""
        g_plain = rmat_graph(scale=9, seed=4, permute_labels=False)
        deg = g_plain.degrees()
        # Recursive process puts most mass at low ids.
        assert deg[: 2**5].sum() > deg[-(2**5) :].sum()


class TestPartition1D:
    def test_balanced_sizes(self):
        p = Partition1D(10, 4)
        sizes = [p.size_of(i) for i in range(4)]
        assert sizes == [3, 3, 2, 2]
        assert sum(sizes) == 10

    def test_ranges_contiguous(self):
        p = Partition1D(100, 7)
        prev_hi = 0
        for i in range(7):
            lo, hi = p.range_of(i)
            assert lo == prev_hi
            prev_hi = hi
        assert prev_hi == 100

    def test_owner_scalar_and_vector(self):
        p = Partition1D(10, 4)
        assert p.owner(0) == 0
        assert p.owner(9) == 3
        owners = p.owner(np.arange(10))
        for v in range(10):
            lo, hi = p.range_of(int(owners[v]))
            assert lo <= v < hi

    def test_owner_out_of_range(self):
        p = Partition1D(10, 2)
        with pytest.raises(GraphError):
            p.owner(10)

    def test_more_parts_than_vertices(self):
        p = Partition1D(3, 5)
        sizes = [p.size_of(i) for i in range(5)]
        assert sizes == [1, 1, 1, 0, 0]

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            Partition1D(10, 0)
        with pytest.raises(ConfigError):
            Partition1D(10, 3).range_of(3)

    def test_extract_local_preserves_adjacency(self):
        g = rmat_graph(scale=7, seed=2)
        p = Partition1D(g.num_vertices, 4)
        for part in range(4):
            local = p.extract_local(g, part)
            lo, hi = p.range_of(part)
            assert local.num_local_vertices == hi - lo
            for i in range(0, local.num_local_vertices, 17):
                got = local.targets[local.offsets[i] : local.offsets[i + 1]]
                assert np.array_equal(got, g.neighbors(lo + i))

    def test_extract_local_wrong_graph(self):
        p = Partition1D(8, 2)
        with pytest.raises(GraphError):
            p.extract_local(star_graph(5), 0)


class TestDegree:
    def test_statistics(self):
        stats = degree_statistics(star_graph(5))
        assert stats.max_degree == 4
        assert stats.isolated_vertices == 0
        assert stats.mean_degree == pytest.approx(8 / 5)

    def test_sample_roots_nonisolated(self):
        g = rmat_graph(scale=8, seed=1)
        roots = sample_roots(g, 16, seed=3)
        assert len(set(roots.tolist())) == 16
        assert np.all(g.degrees()[roots] > 0)

    def test_sample_roots_too_many(self):
        with pytest.raises(ValueError):
            sample_roots(star_graph(4), 10)

    def test_sample_roots_deterministic(self):
        g = rmat_graph(scale=8, seed=1)
        r1 = sample_roots(g, 8, seed=7)
        r2 = sample_roots(g, 8, seed=7)
        assert np.array_equal(r1, r2)


class TestIO:
    def test_edge_list_round_trip(self, tmp_path):
        edges = generate_rmat_edges(scale=6, seed=4)
        path = tmp_path / "edges.npz"
        save_edge_list(path, edges)
        back = load_edge_list(path)
        assert back.num_vertices == edges.num_vertices
        assert np.array_equal(back.sources, edges.sources)

    def test_graph_round_trip(self, tmp_path):
        g = rmat_graph(scale=6, seed=4)
        path = tmp_path / "graph.npz"
        save_graph(path, g)
        back = load_graph(path)
        assert back.num_vertices == g.num_vertices
        assert np.array_equal(back.offsets, g.offsets)
        assert np.array_equal(back.targets, g.targets)
        assert back.meta == g.meta

    def test_kind_mismatch(self, tmp_path):
        g = rmat_graph(scale=5)
        path = tmp_path / "g.npz"
        save_graph(path, g)
        with pytest.raises(GraphError):
            load_edge_list(path)
