"""Tests for process mapping, binding policies and shared buffers."""

import numpy as np
import pytest

from repro.errors import CommunicationError, ConfigError
from repro.machine import Placement, paper_cluster
from repro.mpi import BindingPolicy, NodeSharedBuffer, ProcessMapping


@pytest.fixture(scope="module")
def cluster():
    return paper_cluster(nodes=4)


class TestProcessMapping:
    def test_ppn8_bind(self, cluster):
        m = ProcessMapping(cluster, ppn=8, policy=BindingPolicy.BIND_TO_SOCKET)
        assert m.num_ranks == 32
        assert m.threads_per_rank == 8
        loc = m.location(9)
        assert loc.node == 1
        assert loc.socket == 1
        assert loc.threads_sockets == 1
        assert loc.private_placement is Placement.LOCAL_SOCKET

    def test_ppn1_interleave(self, cluster):
        m = ProcessMapping(cluster, ppn=1, policy=BindingPolicy.INTERLEAVE)
        assert m.num_ranks == 4
        assert m.threads_per_rank == 64
        loc = m.location(2)
        assert loc.node == 2
        assert loc.socket is None
        assert loc.threads_sockets == 8
        assert loc.private_placement is Placement.INTERLEAVED

    def test_ppn1_noflag_single_socket(self, cluster):
        m = ProcessMapping(cluster, ppn=1, policy=BindingPolicy.NOFLAG)
        assert m.location(0).private_placement is Placement.SINGLE_SOCKET

    def test_ppn8_noflag(self, cluster):
        m = ProcessMapping(cluster, ppn=8, policy=BindingPolicy.NOFLAG)
        loc = m.location(0)
        assert loc.socket is None
        assert loc.threads_sockets == 8

    def test_bind_with_ppn1_rejected(self, cluster):
        """The paper notes bind-to-socket only works with >= 8 processes."""
        with pytest.raises(ConfigError):
            ProcessMapping(cluster, ppn=1, policy=BindingPolicy.BIND_TO_SOCKET)

    def test_node_major_layout(self, cluster):
        m = ProcessMapping(cluster, ppn=8)
        assert [m.node_of(r) for r in range(10)] == [0] * 8 + [1, 1]
        assert list(m.ranks_on_node(1)) == list(range(8, 16))

    def test_leaders(self, cluster):
        m = ProcessMapping(cluster, ppn=8)
        assert m.leader_of_node(2) == 16
        assert m.is_leader(16)
        assert not m.is_leader(17)

    def test_subgroups(self, cluster):
        m = ProcessMapping(cluster, ppn=8)
        assert m.subgroup_of(3) == [3, 11, 19, 27]
        assert m.subgroup_of(11) == [3, 11, 19, 27]

    def test_intermediate_ppn(self, cluster):
        m = ProcessMapping(cluster, ppn=4, policy=BindingPolicy.BIND_TO_SOCKET)
        assert m.threads_per_rank == 16
        assert m.sockets_per_rank == 2
        assert m.location(1).socket == 2  # local index 1 * 2 sockets per rank

    def test_invalid_ppn(self, cluster):
        with pytest.raises(ConfigError):
            ProcessMapping(cluster, ppn=0)
        with pytest.raises(ConfigError):
            ProcessMapping(cluster, ppn=3)  # does not divide 8
        with pytest.raises(ConfigError):
            ProcessMapping(cluster, ppn=16)

    def test_rank_range_checks(self, cluster):
        m = ProcessMapping(cluster, ppn=8)
        with pytest.raises(ConfigError):
            m.node_of(32)
        with pytest.raises(ConfigError):
            m.ranks_on_node(4)


class TestNodeSharedBuffer:
    def test_regions(self):
        buf = NodeSharedBuffer(0, 10, np.array([0, 4, 10]))
        assert buf.num_regions == 2
        buf.write_region(0, np.arange(4, dtype=np.uint64))
        buf.write_region(1, np.arange(6, dtype=np.uint64))
        assert buf.data[:4].tolist() == [0, 1, 2, 3]

    def test_read_all_is_read_only(self):
        buf = NodeSharedBuffer(0, 4)
        view = buf.read_all()
        with pytest.raises(ValueError):
            view[0] = 1

    def test_region_size_mismatch(self):
        buf = NodeSharedBuffer(0, 10, np.array([0, 4, 10]))
        with pytest.raises(CommunicationError):
            buf.write_region(0, np.zeros(5, dtype=np.uint64))

    def test_region_out_of_range(self):
        buf = NodeSharedBuffer(0, 10)
        with pytest.raises(CommunicationError):
            buf.region(1)

    def test_bad_bounds(self):
        with pytest.raises(CommunicationError):
            NodeSharedBuffer(0, 10, np.array([1, 10]))
        with pytest.raises(CommunicationError):
            NodeSharedBuffer(0, 10, np.array([0, 5]))

    def test_default_single_region(self):
        buf = NodeSharedBuffer(0, 6)
        assert buf.num_regions == 1
        assert buf.region(0).size == 6
