"""Detailed tests of the timing assembler: pricing invariants that the
paper's mechanisms rely on."""

import dataclasses as dc

import numpy as np
import pytest

from repro.core import BFSConfig, CommConfig, StructureSizes
from repro.core.counts import Direction, LevelCounts, RunCounts
from repro.core.timing import CostConstants, assemble, _Pricer
from repro.machine import paper_cluster
from repro.mpi import BindingPolicy, ProcessMapping, SimComm


def make_comm(nodes=2, ppn=8, policy=BindingPolicy.BIND_TO_SOCKET):
    cluster = paper_cluster(nodes=nodes)
    return SimComm(cluster, ProcessMapping(cluster, ppn=ppn, policy=policy))


def sizes_for(scale, comm, granularity=64):
    return StructureSizes(
        num_vertices=2**scale,
        num_arcs=2 * 16 * 2**scale,
        num_ranks=comm.num_ranks,
        granularity=granularity,
    )


def bu_level(num_ranks, examined=10_000_000, reads=2_000_000, cand=1_000_000):
    lc = LevelCounts(level=0, direction=Direction.BOTTOM_UP)
    lc.frontier_local = np.full(num_ranks, 1000, dtype=np.int64)
    lc.candidates = np.full(num_ranks, cand, dtype=np.int64)
    lc.examined_edges = np.full(num_ranks, examined, dtype=np.int64)
    lc.inqueue_reads = np.full(num_ranks, reads, dtype=np.int64)
    lc.discovered = np.full(num_ranks, 500, dtype=np.int64)
    lc.inq_part_words = 2**20
    lc.summary_part_words = 2**14
    lc.allreduces = 3
    return lc


def run_counts(comm, levels):
    rc = RunCounts(num_vertices=2**28, num_ranks=comm.num_ranks)
    rc.levels = levels
    return rc


class TestPricerInvariants:
    def test_binding_prices_compute_below_interleave(self):
        """Identical counts must cost more under the interleaved policy —
        the essence of the NUMA experiments."""
        comm_bind = make_comm(ppn=8, policy=BindingPolicy.BIND_TO_SOCKET)
        comm_int = make_comm(ppn=8, policy=BindingPolicy.NOFLAG)
        cfg = BFSConfig.original_ppn8()
        cfg_nof = BFSConfig(binding=BindingPolicy.NOFLAG)
        lc = bu_level(comm_bind.num_ranks)
        t_bind = assemble(
            run_counts(comm_bind, [lc]), comm_bind, cfg,
            sizes_for(28, comm_bind),
        )
        t_nof = assemble(
            run_counts(comm_int, [lc]), comm_int, cfg_nof,
            sizes_for(28, comm_int),
        )
        assert t_nof.breakdown.bu_compute > 1.5 * t_bind.breakdown.bu_compute

    def test_summary_substitution_property(self):
        """With the summary enabled, a level whose reads are fully
        filtered (inqueue_reads=0) must price below the same level with
        all reads passing through."""
        comm = make_comm()
        cfg = BFSConfig.original_ppn8()
        sizes = sizes_for(30, comm)
        filtered = bu_level(comm.num_ranks, examined=10**7, reads=0)
        unfiltered = bu_level(comm.num_ranks, examined=10**7, reads=10**7)
        t_f = assemble(run_counts(comm, [filtered]), comm, cfg, sizes)
        t_u = assemble(run_counts(comm, [unfiltered]), comm, cfg, sizes)
        assert t_f.breakdown.bu_compute < t_u.breakdown.bu_compute

    def test_granularity_shrinks_summary_latency(self):
        comm = make_comm()
        cfg64 = BFSConfig.granularity_variant(64)
        cfg512 = BFSConfig.granularity_variant(512)
        p64 = _Pricer(comm, cfg64, sizes_for(32, comm, 64), CostConstants())
        p512 = _Pricer(comm, cfg512, sizes_for(32, comm, 512), CostConstants())
        assert p512.lat_summary < p64.lat_summary

    def test_switch_cost_only_when_switched(self):
        comm = make_comm()
        cfg = BFSConfig.original_ppn8()
        sizes = sizes_for(28, comm)
        lc_plain = bu_level(comm.num_ranks)
        lc_switch = bu_level(comm.num_ranks)
        lc_switch.switched = True
        t_plain = assemble(run_counts(comm, [lc_plain]), comm, cfg, sizes)
        t_switch = assemble(run_counts(comm, [lc_switch]), comm, cfg, sizes)
        assert t_plain.breakdown.switch == 0.0
        assert t_switch.breakdown.switch > 0.0

    def test_stall_reflects_imbalance(self):
        comm = make_comm()
        cfg = BFSConfig.original_ppn8()
        sizes = sizes_for(28, comm)
        balanced = bu_level(comm.num_ranks)
        skewed = bu_level(comm.num_ranks)
        skewed.examined_edges = skewed.examined_edges.copy()
        skewed.examined_edges[0] *= 10
        t_bal = assemble(run_counts(comm, [balanced]), comm, cfg, sizes)
        t_skew = assemble(run_counts(comm, [skewed]), comm, cfg, sizes)
        assert t_bal.breakdown.stall < t_skew.breakdown.stall

    def test_cost_constants_scale_cpu_term(self):
        comm = make_comm()
        cfg = BFSConfig.original_ppn8()
        sizes = sizes_for(28, comm)
        lc = bu_level(comm.num_ranks)
        cheap = CostConstants()
        pricey = dc.replace(
            cheap,
            cycles_per_bu_edge=cheap.cycles_per_bu_edge * 1000,
        )
        t_cheap = assemble(run_counts(comm, [lc]), comm, cfg, sizes, cheap)
        t_pricey = assemble(run_counts(comm, [lc]), comm, cfg, sizes, pricey)
        assert t_pricey.breakdown.bu_compute > t_cheap.breakdown.bu_compute

    def test_no_summary_drops_summary_allgather(self):
        comm = make_comm()
        sizes = sizes_for(28, comm)
        lc = bu_level(comm.num_ranks)
        with_s = assemble(
            run_counts(comm, [lc]), comm, BFSConfig.original_ppn8(), sizes
        )
        without = assemble(
            run_counts(comm, [lc]), comm,
            BFSConfig(comm=CommConfig(use_summary=False)), sizes
        )
        assert without.breakdown.bu_comm < with_s.breakdown.bu_comm


class TestAlltoallvTime:
    def test_diagonal_free(self):
        comm = make_comm(nodes=2, ppn=2)
        n = comm.num_ranks
        m = np.zeros((n, n))
        np.fill_diagonal(m, 1e9)
        assert np.all(comm.alltoallv_time(m) == 0.0)

    def test_inter_node_costs_more_than_intra(self):
        comm = make_comm(nodes=2, ppn=8)
        n = comm.num_ranks
        intra = np.zeros((n, n))
        intra[0, 1] = 64 * 2**20  # ranks 0,1 on node 0
        inter = np.zeros((n, n))
        inter[0, 8] = 64 * 2**20  # node 0 -> node 1
        t_intra = comm.alltoallv_time(intra).max()
        t_inter = comm.alltoallv_time(inter).max()
        # With ppn=8 flows assumed, a single big intra copy contends less
        # than an IB flow at 1/8 of node bandwidth? Both are positive and
        # finite; the key property is that *both sides* are charged.
        assert t_intra > 0 and t_inter > 0

    def test_receiver_side_charged(self):
        comm = make_comm(nodes=2, ppn=8)
        n = comm.num_ranks
        m = np.zeros((n, n))
        m[:, 5] = 2**20  # everyone sends to rank 5
        times = comm.alltoallv_time(m)
        assert times[5] >= times[6]

    def test_more_bytes_more_time(self):
        comm = make_comm(nodes=2, ppn=8)
        n = comm.num_ranks
        small = np.full((n, n), 1024.0)
        big = np.full((n, n), 1024.0 * 1024)
        assert comm.alltoallv_time(big).max() > comm.alltoallv_time(small).max()


class TestStructureSizes:
    def test_derived_quantities(self):
        s = StructureSizes(
            num_vertices=2**20, num_arcs=2**25, num_ranks=16, granularity=256
        )
        assert s.in_queue_bytes == 2**20 / 8
        assert s.summary_bytes == 2**20 / 256 / 8
        assert s.local_vertices == 2**16
        assert s.out_part_bytes == 2**16 / 8
        assert s.local_graph_bytes > s.parent_bytes
