"""``repro-chaos`` campaign CLI: smoke, report schema, typed failures."""

import json

import pytest

from repro.faults.chaoscli import SCHEMA, main, run_campaign
from repro.faults.plan import available_scenarios

OUTCOMES_OK = {"recovered", "degraded", "clean"}


@pytest.fixture(scope="module")
def report():
    return run_campaign(list(available_scenarios()), scale=11, nodes=2, seed=0)


def test_campaign_all_scenarios_pass(report):
    assert report["ok"] is True
    assert {e["name"] for e in report["scenarios"]} == set(
        available_scenarios()
    )
    for e in report["scenarios"]:
        assert e["outcome"] in OUTCOMES_OK, e
        assert e["identical"] is True
        assert e["validated"] is True


def test_campaign_report_schema(report):
    assert report["schema"] == SCHEMA
    for key in (
        "scale", "nodes", "num_ranks", "seed", "root", "baseline",
        "scenarios", "ok", "checkpoint_every",
    ):
        assert key in report
    assert report["baseline"]["levels"] > 0
    for e in report["scenarios"]:
        assert "plan" in e and "fault_events" in e
        assert e["overhead_seconds"] >= 0.0
    json.dumps(report)  # artifact must be JSON-serializable


def test_crash_scenarios_actually_recover(report):
    by_name = {e["name"]: e for e in report["scenarios"]}
    for name in ("crash-early", "crash-late", "corruption"):
        assert by_name[name]["outcome"] == "recovered"
        assert by_name[name]["rollbacks"] >= 1
    assert by_name["straggler"]["outcome"] == "degraded"
    assert by_name["straggler"]["overhead_pct"] > 0


def test_campaign_is_deterministic(report):
    again = run_campaign(
        list(available_scenarios()), scale=11, nodes=2, seed=0
    )
    assert again == report


def test_cli_json_artifact(tmp_path, capsys):
    out = tmp_path / "chaos.json"
    code = main(
        ["crash-early", "straggler", "--scale", "11", "--json", str(out)]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == SCHEMA
    assert report["ok"] is True
    text = capsys.readouterr().out
    assert "crash-early" in text and "recovered" in text


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in available_scenarios():
        assert name in out


def test_cli_unknown_scenario(capsys):
    assert main(["meteor-strike"]) == 2


def test_cli_disabled_checkpoints_reports_typed_abort(tmp_path, capsys):
    out = tmp_path / "chaos.json"
    code = main(
        [
            "crash-early", "--scale", "11",
            "--checkpoint-every", "0", "--json", str(out),
        ]
    )
    assert code == 1  # aborted scenarios fail the campaign
    report = json.loads(out.read_text())
    entry = report["scenarios"][0]
    assert entry["outcome"] == "aborted"
    assert entry["error"]["type"] == "FaultError"
    assert entry["error"]["context"]["kind"] == "crash"
    assert "aborted" in capsys.readouterr().out
