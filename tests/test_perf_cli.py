"""Tests for the ``repro-perf`` CLI and the trace-out naming contract."""

import json

import pytest

from repro.obs.perfcli import main


def _comm_doc():
    return {
        "machine_info": {},
        "commit_info": {"id": "deadbeef"},
        "datetime": "2026-08-06T00:00:00+00:00",
        "benchmarks": [
            {
                "name": "test_comm_bytes[auto]",
                "group": None,
                "params": None,
                "extra_info": {
                    "codec": "auto",
                    "scale": 15,
                    "simulated_seconds": 4.0e-4,
                    "allgather_raw_bytes": 20800.0,
                },
                "stats": {"min": 0.1, "mean": 0.12},
            }
        ],
    }


class TestDiffExitCodes:
    def test_identical_exits_zero(self, tmp_path, capsys):
        p = tmp_path / "base.json"
        p.write_text(json.dumps(_comm_doc()))
        rc = main(["diff", str(p), str(p), "--fail-on-regress", "10"])
        assert rc == 0
        assert "perf diff OK" in capsys.readouterr().out

    def test_synthetic_regression_exits_nonzero(self, tmp_path, capsys):
        """Acceptance: >= 20 % simulated-TEPS regression -> exit != 0."""
        old = tmp_path / "old.json"
        old.write_text(json.dumps(_comm_doc()))
        bad_doc = _comm_doc()
        bad_doc["benchmarks"][0]["extra_info"]["simulated_seconds"] *= 1.25
        new = tmp_path / "new.json"
        new.write_text(json.dumps(bad_doc))
        verdict_path = tmp_path / "verdict.json"
        rc = main(
            [
                "diff", str(old), str(new),
                "--fail-on-regress", "20",
                "--json", str(verdict_path),
            ]
        )
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out
        verdict = json.loads(verdict_path.read_text())
        assert verdict["ok"] is False
        assert verdict["schema"] == "repro.perfdiff/v1"

    def test_committed_baseline_self_diff(self, capsys):
        assert main(["diff", "BENCH_comm.json", "BENCH_comm.json"]) == 0

    def test_no_wall_ignores_machine_speed(self, tmp_path):
        old = tmp_path / "old.json"
        old.write_text(json.dumps(_comm_doc()))
        slow_doc = _comm_doc()
        slow_doc["benchmarks"][0]["stats"] = {"min": 9.0, "mean": 9.5}
        new = tmp_path / "new.json"
        new.write_text(json.dumps(slow_doc))
        assert main(["diff", str(old), str(new)]) == 1
        assert main(["diff", str(old), str(new), "--no-wall"]) == 0

    def test_json_dash_keeps_stdout_pure(self, tmp_path, capsys):
        """Satellite: ``--json -`` streams the verdict JSON to stdout
        (pipeable into jq) and moves the human table to stderr."""
        p = tmp_path / "base.json"
        p.write_text(json.dumps(_comm_doc()))
        rc = main(["diff", str(p), str(p), "--json", "-"])
        assert rc == 0
        captured = capsys.readouterr()
        verdict = json.loads(captured.out)  # whole stdout is one JSON doc
        assert verdict["schema"] == "repro.perfdiff/v1"
        assert verdict["ok"] is True
        assert "perf diff OK" in captured.err

    def test_fail_on_incomparable_is_opt_in(self, tmp_path):
        old = tmp_path / "old.json"
        old.write_text(json.dumps(_comm_doc()))
        moved = _comm_doc()
        # A context change (scale 15 -> 12) makes every metric row
        # incomparable rather than gated.
        moved["benchmarks"][0]["extra_info"]["scale"] = 12
        new = tmp_path / "new.json"
        new.write_text(json.dumps(moved))
        assert main(["diff", str(old), str(new)]) == 0
        assert main(
            ["diff", str(old), str(new), "--fail-on-incomparable"]
        ) == 2

    def test_regression_beats_incomparable_exit_code(self, tmp_path):
        doc = _comm_doc()
        doc["benchmarks"].append(
            {
                "name": "test_other[raw]",
                "group": None,
                "params": None,
                "extra_info": {
                    "codec": "raw",
                    "scale": 15,
                    "simulated_seconds": 1.0e-3,
                },
                "stats": {"min": 0.1, "mean": 0.12},
            }
        )
        old = tmp_path / "old.json"
        old.write_text(json.dumps(doc))
        bad = json.loads(json.dumps(doc))
        bad["benchmarks"][0]["extra_info"]["scale"] = 12  # incomparable
        bad["benchmarks"][1]["extra_info"]["simulated_seconds"] *= 2  # gated
        new = tmp_path / "new.json"
        new.write_text(json.dumps(bad))
        rc = main(
            [
                "diff", str(old), str(new),
                "--fail-on-regress", "20",
                "--fail-on-incomparable",
            ]
        )
        assert rc == 1  # the gate failure outranks the usage-ish exit 2


class TestAttributeCommand:
    def test_fig11_attribution_matches_recorded_sums(self, tmp_path, capsys):
        """Acceptance: `repro-perf attribute` on the fig11 configuration
        reproduces the compute/comm split within 1 % of the sums the
        timing layer already recorded."""
        out = tmp_path / "attr.json"
        rc = main(
            [
                "attribute", "--experiment", "fig11", "--quick",
                "--json", str(out),
            ]
        )
        assert rc == 0
        assert "run attribution" in capsys.readouterr().out
        attr = json.loads(out.read_text())
        assert attr["schema"] == "repro.attribution/v1"

        # Re-run the identical (deterministic) reference configuration
        # and compare against its recorded PhaseBreakdown.
        from repro.experiments.common import ExperimentSettings
        from repro.experiments.registry import traced_reference_run
        from repro.obs.tracer import SpanTracer

        result = traced_reference_run(
            "fig11", ExperimentSettings().quick(), tracer=SpanTracer()
        )
        bd = result.timing.breakdown
        compute = sum(attr["compute_ns"].values())
        comm = sum(attr["comm_ns"].values())
        assert compute == pytest.approx(
            bd.td_compute + bd.bu_compute, rel=0.01
        )
        assert comm == pytest.approx(bd.td_comm + bd.bu_comm, rel=0.01)
        assert attr["total_ns"] == pytest.approx(bd.total, rel=0.01)
        assert len(attr["levels"]) == result.levels


class TestDriftCommand:
    def test_exact_layers_clean(self, tmp_path, capsys):
        out = tmp_path / "drift.json"
        rc = main(
            [
                "drift", "--experiment", "fig11", "--quick",
                "--analytic-threshold", "1e9",
                "--fail-on-drift",
                "--json", str(out),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["ok"] is True
        exact = [
            c for c in doc["components"]
            if c["source"] in ("pricing", "trace")
        ]
        assert exact
        assert all(abs(c["rel_error"]) <= 1e-9 for c in exact)

    def test_fail_on_drift_gates(self, capsys):
        # the analytic approximation cannot match a tiny functional run
        # to 1e-6 % on every component
        rc = main(
            [
                "drift", "--experiment", "fig11", "--quick",
                "--analytic-threshold", "1e-6",
                "--fail-on-drift",
            ]
        )
        assert rc == 1
        assert "DRIFT" in capsys.readouterr().out


class TestTraceOutNaming:
    """Satellite: `--trace-out PATH` naming is explicit and collision-free."""

    def test_single_experiment_uses_path_verbatim(self):
        from repro.experiments.cli import trace_output_path

        assert trace_output_path("/tmp/t.json", "fig09", many=False) == (
            "/tmp/t.json"
        )

    def test_many_experiments_get_unique_paths(self):
        from repro.experiments.cli import trace_output_path
        from repro.experiments.registry import EXPERIMENTS

        paths = {
            trace_output_path("/tmp/t.json", eid, many=True)
            for eid in EXPERIMENTS
        }
        assert len(paths) == len(EXPERIMENTS)
        assert all(p.startswith("/tmp/t.json.") for p in paths)
        assert trace_output_path("/tmp/t.json", "fig09", many=True) == (
            "/tmp/t.json.fig09.json"
        )

    def test_two_experiments_do_not_clobber(self, tmp_path, monkeypatch):
        """Regression: running several experiments with --trace-out must
        write one distinct trace (+ event log) per experiment."""
        from repro.experiments import cli
        from repro.experiments.registry import EXPERIMENTS

        subset = {eid: EXPERIMENTS[eid] for eid in ("fig09", "fig11")}
        monkeypatch.setattr(cli, "EXPERIMENTS", subset)

        class _StubResult:
            def to_text(self):
                return "(stubbed experiment table)"

        monkeypatch.setattr(
            cli, "run_experiment", lambda eid, settings: _StubResult()
        )

        base = tmp_path / "t.json"
        rc = cli.main(["all", "--quick", "--trace-out", str(base)])
        assert rc == 0
        assert not base.exists()  # 'all' never writes the bare path
        seen = set()
        for eid in subset:
            trace = tmp_path / f"t.json.{eid}.json"
            events = tmp_path / f"t.json.{eid}.json.events.jsonl"
            assert trace.exists(), f"missing trace for {eid}"
            assert events.exists(), f"missing event log for {eid}"
            doc = json.loads(trace.read_text())
            assert doc["traceEvents"]
            seen.add(trace.read_text())
        assert len(seen) == 2  # distinct runs, not one file written twice


class TestAttributionFlag:
    def test_cli_attribution_output(self, capsys, monkeypatch):
        from repro.experiments import cli

        class _StubResult:
            def to_text(self):
                return "(stubbed experiment table)"

        monkeypatch.setattr(
            cli, "run_experiment", lambda eid, settings: _StubResult()
        )
        rc = cli.main(["fig11", "--quick", "--attribution"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "run attribution" in out
        assert "per-level attribution" in out
