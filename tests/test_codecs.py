"""Property tests for the frontier codec layer.

The contract under test is **losslessness**: every registered codec must
round-trip arbitrary bitmap payloads bit-identically, because the engine
feeds the decoded words straight back into the BFS.  The suite pins that
on the ISSUE's fill grid (empty, 1/1024, half, full) at word-boundary
and off-by-one lengths, exercises the sieve codec's visited-overlap
exceptional path, and closes with whole-run engine bit-identity against
``raw`` under the ``REPRO_CODEC`` matrix — the acceptance criterion that
a codec can never change what the BFS computes, only the simulated wire
bytes and seconds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BFSConfig, BFSEngine, CommConfig
from repro.errors import CommunicationError, ConfigError
from repro.graph import rmat_graph
from repro.machine import paper_cluster
from repro.machine.costmodel import CodecCostModel
from repro.mpi import AllgatherAlgorithm, SimComm, allgather
from repro.mpi.codecs import (
    CANDIDATE_CODECS,
    DEFAULT_CODEC,
    ENV_VAR,
    AutoCodec,
    available_codecs,
    decode_varints,
    default_codec,
    encode_varints,
    get_codec,
    resolve_codec,
)
from repro.mpi.mapping import BindingPolicy, ProcessMapping
from repro.util import bitops

#: The concrete wire formats (everything but the ``auto`` chooser).
CONCRETE = ("raw", "rle-bitmap", "sparse-index", "sieve")

#: The ISSUE's fill grid: empty, 1/1024, half, full.
FILLS = (0.0, 1.0 / 1024.0, 0.5, 1.0)

#: Word-boundary and off-by-one bit lengths.
NBITS = (64, 63, 65, 128, 127, 1024, 1023, 1025)


def random_bitmap(nbits: int, fill: float, seed: int) -> np.ndarray:
    """A uint64 bitmap of ``nbits`` bits at the given fill ratio, with
    the padding bits beyond ``nbits`` guaranteed zero."""
    rng = np.random.default_rng(seed)
    bits = rng.random(nbits) < fill
    if fill >= 1.0:
        bits[:] = True
    words = bitops.bool_to_bits(bits)
    pad = bitops.words_for_bits(nbits) - words.size
    if pad:
        words = np.concatenate(
            (words, np.zeros(pad, dtype=bitops.WORD_DTYPE))
        )
    return words


class TestRoundTrip:
    """decode(encode(x)) == x for every codec, fill and length."""

    @pytest.mark.parametrize("name", CONCRETE)
    @pytest.mark.parametrize("fill", FILLS)
    @pytest.mark.parametrize("nbits", NBITS)
    def test_fill_grid(self, name, fill, nbits):
        codec = get_codec(name)
        words = random_bitmap(nbits, fill, seed=nbits * 7 + int(fill * 100))
        enc = codec.encode(words, nbits=nbits)
        assert enc.codec == name
        assert enc.nwords == words.size
        assert enc.nbits == nbits
        out = codec.decode(enc)
        assert out.dtype == bitops.WORD_DTYPE
        assert np.array_equal(out, words), f"{name} corrupted the bitmap"

    @pytest.mark.parametrize("name", CONCRETE)
    @pytest.mark.parametrize("fill", FILLS)
    def test_with_disjoint_visited_mask(self, name, fill):
        """The engine's invariant case: frontier ∩ visited = ∅."""
        nbits = 640
        rng = np.random.default_rng(3)
        frontier_bits = rng.random(nbits) < fill
        visited_bits = ~frontier_bits & (rng.random(nbits) < 0.5)
        words = bitops.bool_to_bits(frontier_bits)
        visited = bitops.bool_to_bits(visited_bits)
        codec = get_codec(name)
        enc = codec.encode(words, nbits=nbits, visited=visited)
        out = codec.decode(enc, visited=visited)
        assert np.array_equal(out, words)

    @pytest.mark.parametrize("name", CONCRETE)
    def test_with_overlapping_visited_mask(self, name):
        """Losslessness for arbitrary inputs: set bits at visited
        positions must survive (the sieve's exceptional list)."""
        nbits = 512
        rng = np.random.default_rng(11)
        frontier_bits = rng.random(nbits) < 0.3
        visited_bits = rng.random(nbits) < 0.5  # overlaps the frontier
        assert (frontier_bits & visited_bits).any()
        words = bitops.bool_to_bits(frontier_bits)
        visited = bitops.bool_to_bits(visited_bits)
        codec = get_codec(name)
        enc = codec.encode(words, nbits=nbits, visited=visited)
        out = codec.decode(enc, visited=visited)
        assert np.array_equal(out, words)

    @settings(max_examples=60, deadline=None)
    @given(
        name=st.sampled_from(CONCRETE),
        nbits=st.integers(min_value=1, max_value=700),
        fill_pct=st.integers(min_value=0, max_value=100),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_randomized(self, name, nbits, fill_pct, seed):
        """Hypothesis sweep over length/fill/content space."""
        codec = get_codec(name)
        words = random_bitmap(nbits, fill_pct / 100.0, seed)
        rng = np.random.default_rng(seed + 1)
        visited_bits = rng.random(nbits) < 0.4
        visited = bitops.bool_to_bits(visited_bits)
        pad = words.size - visited.size
        if pad:
            visited = np.concatenate(
                (visited, np.zeros(pad, dtype=bitops.WORD_DTYPE))
            )
        enc = codec.encode(words, nbits=nbits, visited=visited)
        out = codec.decode(enc, visited=visited)
        assert np.array_equal(out, words)

    def test_raw_is_identity(self):
        raw = get_codec("raw")
        assert raw.is_identity
        words = random_bitmap(256, 0.3, seed=1)
        enc = raw.encode(words)
        # No framing byte, wire bytes == raw bytes: priced like the
        # pre-codec engine.
        assert enc.header_bytes == 0
        assert enc.wire_nbytes == enc.raw_nbytes == words.size * 8
        for name in CONCRETE[1:]:
            assert not get_codec(name).is_identity


class TestVarints:
    """The LEB128 substrate every non-raw codec builds on."""

    @pytest.mark.parametrize(
        "values",
        [
            [0],
            [1, 127, 128, 129],
            [2**14 - 1, 2**14, 2**35, 2**63, 2**64 - 1],
            [],
        ],
    )
    def test_round_trip(self, values):
        vals = np.array(values, dtype=np.uint64)
        buf = encode_varints(vals)
        out, used = decode_varints(buf, len(values))
        assert used == buf.size
        assert np.array_equal(out.astype(np.uint64), vals)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**63 - 1), max_size=200
        )
    )
    def test_round_trip_randomized(self, values):
        vals = np.array(values, dtype=np.int64)
        buf = encode_varints(vals)
        out, used = decode_varints(buf, len(values))
        assert used == buf.size
        assert np.array_equal(out, vals)

    def test_negative_rejected(self):
        with pytest.raises(CommunicationError, match="non-negative"):
            encode_varints(np.array([-1]))

    def test_truncated_stream_rejected(self):
        buf = encode_varints(np.array([300, 300]))
        with pytest.raises(CommunicationError, match="truncated"):
            decode_varints(buf[:-1], 2)


class TestEstimates:
    """estimate_wire_bytes drives auto's choice; sanity-pin its shape."""

    def test_raw_estimate_is_exact(self):
        raw = get_codec("raw")
        for nbits in NBITS:
            assert raw.estimate_wire_bytes(nbits, 0) == (
                bitops.words_for_bits(nbits) * 8.0
            )

    @pytest.mark.parametrize("name", CONCRETE[1:])
    def test_estimates_track_actual_size(self, name):
        """On large payloads the closed form must be within 2x of the
        real encoding (it prices an average layout, not the payload)."""
        codec = get_codec(name)
        nbits = 1 << 16
        for fill in (1.0 / 1024.0, 0.05, 0.9):
            words = random_bitmap(nbits, fill, seed=5)
            set_bits = int(bitops.popcount_words(words).sum())
            actual = codec.encode(words, nbits=nbits).wire_nbytes
            est = codec.estimate_wire_bytes(nbits, set_bits)
            assert est == pytest.approx(actual, rel=1.0), (
                f"{name} estimate {est} vs actual {actual} at fill {fill}"
            )

    def test_sparse_beats_raw_at_low_fill(self):
        sparse = get_codec("sparse-index")
        raw = get_codec("raw")
        nbits = 1 << 16
        assert sparse.estimate_wire_bytes(nbits, nbits // 1024) < (
            raw.estimate_wire_bytes(nbits, nbits // 1024) / 4
        )

    def test_sieve_improves_with_visited_knowledge(self):
        sieve = get_codec("sieve")
        nbits = 1 << 16
        dense = sieve.estimate_wire_bytes(nbits, nbits // 4, 0)
        sieved = sieve.estimate_wire_bytes(
            nbits, nbits // 4, visited_bits=(nbits * 3) // 4
        )
        assert sieved < dense


class TestRegistry:
    def test_available_codecs_sorted_and_complete(self):
        names = available_codecs()
        assert names == tuple(sorted(names))
        for name in CONCRETE + ("auto",):
            assert name in names

    def test_unknown_codec_lists_alternatives(self):
        with pytest.raises(ConfigError, match="available"):
            get_codec("gzip")

    def test_instances_are_shared(self):
        assert get_codec("sieve") is get_codec("sieve")

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "sparse-index")
        assert default_codec().name == "sparse-index"
        assert resolve_codec(None).name == "sparse-index"
        monkeypatch.delenv(ENV_VAR)
        assert default_codec().name == DEFAULT_CODEC == "raw"

    def test_config_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "sparse-index")
        cfg = BFSConfig(comm=CommConfig(codec="rle-bitmap"))
        assert resolve_codec(cfg).name == "rle-bitmap"

    def test_config_rejects_unknown_codec(self):
        with pytest.raises(ConfigError, match="unknown frontier codec"):
            CommConfig(codec="gzip")


class TestAutoCodec:
    """The chooser: scores candidates, never encodes itself."""

    def test_encode_decode_unusable(self):
        auto = get_codec("auto")
        assert isinstance(auto, AutoCodec)
        with pytest.raises(CommunicationError, match="select"):
            auto.encode(np.zeros(1, dtype=bitops.WORD_DTYPE))
        with pytest.raises(CommunicationError, match="concrete"):
            auto.decode(None)

    def test_picks_raw_when_wire_is_free(self):
        """With zero marginal wire cost, compression only adds
        encode/decode time — raw must win."""
        auto = get_codec("auto")
        chosen = auto.select(
            nbits=1 << 20,
            set_bits=100,
            visited_bits=0,
            ns_per_wire_byte=0.0,
            model=CodecCostModel(),
        )
        assert chosen.name == "raw"

    def test_picks_compressor_for_sparse_payload_on_slow_wire(self):
        auto = get_codec("auto")
        chosen = auto.select(
            nbits=1 << 22,
            set_bits=64,
            visited_bits=0,
            ns_per_wire_byte=10.0,
            model=CodecCostModel(),
        )
        assert chosen.name in CANDIDATE_CODECS[1:]

    def test_prefers_sieve_when_mostly_visited(self):
        """Late-BFS shape: dense-ish frontier, nearly everything
        visited — sieving must beat fill-blind formats."""
        auto = get_codec("auto")
        nbits = 1 << 22
        chosen = auto.select(
            nbits=nbits,
            set_bits=nbits // 8,
            visited_bits=(nbits * 7) // 8,
            ns_per_wire_byte=10.0,
            model=CodecCostModel(),
        )
        assert chosen.name == "sieve"

    def test_estimate_is_min_of_candidates(self):
        auto = get_codec("auto")
        nbits, set_bits = 1 << 16, 128
        assert auto.estimate_wire_bytes(nbits, set_bits) == min(
            get_codec(n).estimate_wire_bytes(nbits, set_bits)
            for n in CANDIDATE_CODECS
        )


class TestAllgatherWithCodec:
    """Collective-level: delivered data identical, wire bytes priced."""

    def make_comm(self, nodes=2, ppn=4):
        cluster = paper_cluster(nodes=nodes)
        mapping = ProcessMapping(
            cluster, ppn=ppn, policy=BindingPolicy.BIND_TO_SOCKET
        )
        return SimComm(cluster, mapping)

    @pytest.mark.parametrize("name", CONCRETE[1:] + ("auto",))
    def test_delivered_bits_identical_to_raw(self, name):
        comm = self.make_comm()
        rng = np.random.default_rng(17)
        parts = [
            bitops.bool_to_bits(rng.random(512) < 0.02)
            for _ in range(comm.mapping.num_ranks)
        ]
        visited = [
            np.zeros(p.size, dtype=bitops.WORD_DTYPE) for p in parts
        ]
        base = allgather(comm, parts, AllgatherAlgorithm.RING)
        res = allgather(
            comm,
            parts,
            AllgatherAlgorithm.RING,
            codec=get_codec(name),
            visited_parts=visited,
        )
        assert np.array_equal(res.data, base.data)
        assert res.raw_bytes == base.raw_bytes
        # At 2% fill on 4 KiB parts, compression must actually win.
        assert res.wire_bytes < res.raw_bytes
        assert res.codec in CONCRETE

    def test_raw_codec_prices_identically_to_no_codec(self):
        comm = self.make_comm()
        rng = np.random.default_rng(23)
        parts = [
            bitops.bool_to_bits(rng.random(256) < 0.5)
            for _ in range(comm.mapping.num_ranks)
        ]
        base = allgather(comm, parts, AllgatherAlgorithm.RING)
        res = allgather(
            comm, parts, AllgatherAlgorithm.RING, codec=get_codec("raw")
        )
        assert np.array_equal(res.rank_times, base.rank_times)
        assert res.wire_bytes == base.wire_bytes == base.raw_bytes


@pytest.fixture(scope="module")
def codec_matrix_graph():
    """One mid-sized R-MAT workload shared by the engine matrix tests."""
    return rmat_graph(scale=11, edgefactor=8, seed=3)


class TestEngineBitIdentity:
    """Whole-run acceptance criterion: any codec == raw, bit for bit."""

    def run(self, graph, codec_name):
        cluster = paper_cluster(nodes=2)
        cfg = BFSConfig(comm=CommConfig.parallel(codec=codec_name))
        root = int(np.argmax(graph.degrees()))
        return BFSEngine(graph, cluster, cfg).run(root)

    @pytest.mark.parametrize("name", CONCRETE[1:] + ("auto",))
    def test_codec_matches_raw(self, codec_matrix_graph, name):
        graph = codec_matrix_graph
        base = self.run(graph, "raw")
        res = self.run(graph, name)
        assert np.array_equal(res.parent, base.parent)
        assert res.levels == base.levels
        for la, lb in zip(base.counts.levels, res.counts.levels):
            assert la.direction == lb.direction
            assert np.array_equal(la.examined_edges, lb.examined_edges)
            assert np.array_equal(la.inqueue_reads, lb.inqueue_reads)
            assert np.array_equal(la.discovered, lb.discovered)
        assert res.counts.traversed_edges == base.counts.traversed_edges

    @pytest.mark.parametrize("name", CONCRETE[1:])
    def test_env_var_matrix(self, codec_matrix_graph, name, monkeypatch):
        """REPRO_CODEC steers the engine exactly like config.codec."""
        graph = codec_matrix_graph
        cluster = paper_cluster(nodes=2)
        root = int(np.argmax(graph.degrees()))
        monkeypatch.delenv(ENV_VAR, raising=False)
        base = BFSEngine(
            graph, cluster, BFSConfig(comm=CommConfig.parallel())
        ).run(root)
        monkeypatch.setenv(ENV_VAR, name)
        res = BFSEngine(
            graph, cluster, BFSConfig(comm=CommConfig.parallel())
        ).run(root)
        assert np.array_equal(res.parent, base.parent)
        assert res.levels == base.levels
        bu = [
            lc for lc in res.counts.levels if lc.direction == "bottom_up"
        ]
        assert bu, "workload never went bottom-up"
        for lc in bu:
            assert lc.codec == name
            assert lc.inq_wire_total_bytes > 0

    def test_wire_bytes_recorded_per_level(self, codec_matrix_graph):
        res = self.run(codec_matrix_graph, "sieve")
        bu = [
            lc for lc in res.counts.levels if lc.direction == "bottom_up"
        ]
        for lc in bu:
            assert lc.inq_raw_total_bytes > 0
            assert lc.inq_wire_total_bytes > 0
            assert lc.inq_wire_part_bytes > 0

    def test_auto_never_slower_than_raw(self, codec_matrix_graph):
        base = self.run(codec_matrix_graph, "raw")
        auto = self.run(codec_matrix_graph, "auto")
        assert auto.seconds <= base.seconds * (1 + 1e-9)
