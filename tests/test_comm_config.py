"""CommConfig consolidation and the legacy flat-kwarg shims.

PR 3's API redesign moves every communication knob onto
``BFSConfig.comm`` (a frozen :class:`CommConfig`).  This suite pins the
three contracts of that migration: (1) ``CommConfig`` validates and
derives algorithms exactly as the flat kwargs did, (2) the flat kwargs
— deprecated in PR 3, removed by the serving-layer redesign — now fail
with a :class:`ConfigError` that names the offending kwargs and spells
out the equivalent ``comm=CommConfig(...)``, and (3) the forwarding
properties keep the paper's vocabulary (``share_in_queue`` and
friends) readable without a second source of truth.
"""

import dataclasses

import pytest

from repro.core import BFSConfig, CommConfig, SharingVariant
from repro.errors import ConfigError
from repro.machine import Placement
from repro.mpi import AllgatherAlgorithm

LEGACY_SHIMS = [
    ({"share_in_queue": True}, CommConfig.shared_in_queue()),
    (
        {"share_in_queue": True, "share_all": True},
        CommConfig.shared_all(),
    ),
    (
        {
            "share_in_queue": True,
            "share_all": True,
            "parallel_allgather": True,
        },
        CommConfig.parallel(),
    ),
    ({"granularity": 256}, CommConfig(summary_granularity=256)),
    ({"use_summary": False}, CommConfig(use_summary=False)),
    (
        {"share_in_queue": True, "granularity": 128, "use_summary": True},
        CommConfig.shared_in_queue(summary_granularity=128),
    ),
]


class TestLegacyShims:
    """The removed flat kwargs: raise with the exact migration hint."""

    @pytest.mark.parametrize("legacy, expected", LEGACY_SHIMS)
    def test_legacy_kwargs_raise_with_equivalent(self, legacy, expected):
        with pytest.raises(ConfigError, match="no longer supported") as exc:
            BFSConfig(**legacy)
        # The error carries the exact replacement, ready to paste.
        assert repr(expected) in str(exc.value)
        assert "comm=CommConfig" in str(exc.value)

    def test_error_names_the_offending_kwargs(self):
        with pytest.raises(ConfigError, match="share_all") as exc:
            BFSConfig(share_in_queue=True, share_all=True)
        assert "share_in_queue" in str(exc.value)

    def test_legacy_alongside_comm_also_rejected(self):
        with pytest.raises(ConfigError, match="no longer supported"):
            BFSConfig(comm=CommConfig(), share_in_queue=True)

    def test_invalid_legacy_combination_still_typed_error(self):
        """share_all without share_in_queue has no equivalent; the
        error still points at the CommConfig migration."""
        with pytest.raises(ConfigError, match="comm=CommConfig"):
            BFSConfig(share_all=True)

    def test_modern_path_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            BFSConfig(comm=CommConfig.parallel(codec="sieve"))
            BFSConfig()


class TestCommConfigValidation:
    def test_granularity_must_be_multiple_of_64(self):
        for bad in (0, 32, 100, -64):
            with pytest.raises(ConfigError, match="granularity"):
                CommConfig(summary_granularity=bad)
        CommConfig(summary_granularity=64)
        CommConfig(summary_granularity=4096)

    def test_parallel_requires_share_all(self):
        with pytest.raises(ConfigError, match="Share all"):
            CommConfig(parallel_allgather=True)
        with pytest.raises(ConfigError, match="Share all"):
            CommConfig(
                sharing=SharingVariant.IN_QUEUE, parallel_allgather=True
            )
        CommConfig(sharing=SharingVariant.ALL, parallel_allgather=True)

    def test_subgroups_requires_parallel(self):
        with pytest.raises(ConfigError, match="subgroups"):
            CommConfig(subgroups=2)
        with pytest.raises(ConfigError, match="subgroups"):
            CommConfig.parallel(subgroups=0)
        assert CommConfig.parallel(subgroups=2).subgroups == 2

    def test_shared_algorithm_needs_shared_buffers(self):
        with pytest.raises(ConfigError, match="node-shared"):
            CommConfig(allgather=AllgatherAlgorithm.SHARED_IN)
        CommConfig(
            sharing=SharingVariant.IN_QUEUE,
            allgather=AllgatherAlgorithm.SHARED_IN,
        )
        # Private ranks may still pick any rank-private algorithm.
        CommConfig(allgather=AllgatherAlgorithm.RING)

    def test_frozen(self):
        cfg = CommConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.summary_granularity = 128

    def test_replace_revalidates(self):
        cfg = CommConfig.parallel()
        with pytest.raises(ConfigError):
            dataclasses.replace(cfg, sharing=SharingVariant.PRIVATE)


class TestDerivations:
    """Algorithm/placement derivations match the paper's stack."""

    def test_in_queue_algorithm_per_variant(self):
        assert (
            CommConfig.private().in_queue_algorithm()
            is AllgatherAlgorithm.DEFAULT
        )
        assert (
            CommConfig.shared_in_queue().in_queue_algorithm()
            is AllgatherAlgorithm.SHARED_IN
        )
        assert (
            CommConfig.shared_all().in_queue_algorithm()
            is AllgatherAlgorithm.SHARED_ALL
        )
        assert (
            CommConfig.parallel().in_queue_algorithm()
            is AllgatherAlgorithm.PARALLEL_SHARED
        )

    def test_explicit_allgather_overrides_derivation(self):
        cfg = CommConfig.shared_all(
            allgather=AllgatherAlgorithm.MULTI_LEADER
        )
        assert cfg.in_queue_algorithm() is AllgatherAlgorithm.MULTI_LEADER

    def test_summary_shared_only_under_share_all(self):
        assert (
            CommConfig.parallel().summary_algorithm()
            is AllgatherAlgorithm.SHARED_ALL
        )
        assert (
            CommConfig.shared_in_queue().summary_algorithm()
            is AllgatherAlgorithm.DEFAULT
        )

    def test_placements(self):
        cfg = CommConfig.shared_in_queue()
        assert (
            cfg.in_queue_placement(Placement.LOCAL_SOCKET)
            is Placement.NODE_SHARED
        )
        assert (
            cfg.summary_placement(Placement.LOCAL_SOCKET)
            is Placement.LOCAL_SOCKET
        )
        assert (
            CommConfig.shared_all().summary_placement(
                Placement.LOCAL_SOCKET
            )
            is Placement.NODE_SHARED
        )


class TestForwardingProperties:
    """BFSConfig keeps the paper's vocabulary as read-only views."""

    def test_views_track_comm(self):
        cfg = BFSConfig(
            comm=CommConfig.parallel(summary_granularity=256)
        )
        assert cfg.share_in_queue
        assert cfg.share_all
        assert cfg.parallel_allgather
        assert cfg.granularity == 256
        assert cfg.use_summary
        assert cfg.shares_in_queue and cfg.shares_everything

    def test_views_are_read_only(self):
        cfg = BFSConfig()
        with pytest.raises((AttributeError, dataclasses.FrozenInstanceError)):
            cfg.share_in_queue = True

    def test_comm_is_single_source(self):
        """Replacing comm flips every view — no second copy anywhere."""
        cfg = BFSConfig()
        assert not cfg.share_in_queue
        cfg2 = dataclasses.replace(cfg, comm=CommConfig.shared_all())
        assert cfg2.share_in_queue and cfg2.share_all

    def test_comm_must_be_commconfig(self):
        with pytest.raises(ConfigError, match="CommConfig"):
            BFSConfig(comm={"sharing": "all"})
