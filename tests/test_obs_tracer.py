"""Tests for the span tracer: nesting, attributes, null no-op path."""

import numpy as np
import pytest

from repro.core import BFSConfig, BFSEngine
from repro.graph import rmat_graph
from repro.machine import paper_cluster
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import (
    NULL_TRACER,
    CommEvent,
    NullTracer,
    RunTelemetry,
    Span,
    SpanTracer,
)


class TestSpanNesting:
    def test_parent_and_depth(self):
        tr = SpanTracer()
        with tr.span("outer"):
            with tr.span("middle"):
                with tr.span("inner"):
                    pass
            with tr.span("sibling"):
                pass
        names = {s.name: s for s in tr.spans}
        assert names["outer"].parent == -1
        assert names["outer"].depth == 0
        assert names["middle"].parent == names["outer"].index
        assert names["inner"].parent == names["middle"].index
        assert names["inner"].depth == 2
        assert names["sibling"].parent == names["outer"].index

    def test_spans_closed_in_order(self):
        tr = SpanTracer()
        with tr.span("a"):
            with tr.span("b"):
                pass
        assert all(s.end_ns is not None for s in tr.spans)
        a, b = tr.spans
        assert a.start_ns <= b.start_ns <= b.end_ns <= a.end_ns

    def test_exception_unwinding_closes_spans(self):
        tr = SpanTracer()
        with pytest.raises(RuntimeError):
            with tr.span("outer"):
                with tr.span("inner"):
                    raise RuntimeError("boom")
        assert all(s.end_ns is not None for s in tr.spans)
        assert tr.current_span is None

    def test_duration_uses_clock(self):
        ticks = iter(range(0, 100, 10))
        tr = SpanTracer(clock=lambda: next(ticks))
        with tr.span("a"):
            pass
        assert tr.spans[0].start_ns == 0
        assert tr.spans[0].duration_ns == 10


class TestSpanAttributes:
    def test_kwargs_and_set(self):
        tr = SpanTracer()
        with tr.span("phase", cat="level", level=3) as sp:
            sp.set(examined=42, direction="top_down")
        s = tr.spans[0]
        assert s.cat == "level"
        assert s.attrs == {"level": 3, "examined": 42, "direction": "top_down"}

    def test_instant_marker(self):
        tr = SpanTracer()
        with tr.span("outer"):
            tr.instant("decide", cat="policy", direction="bottom_up")
        marker = [s for s in tr.spans if s.name == "decide"][0]
        assert marker.duration_ns == 0
        assert marker.parent == tr.spans[0].index
        assert marker.attrs["direction"] == "bottom_up"

    def test_as_dict_shape(self):
        tr = SpanTracer()
        with tr.span("x", cat="c", k=1):
            pass
        d = tr.spans[0].as_dict()
        assert d["kind"] == "span"
        assert d["name"] == "x"
        assert d["attrs"] == {"k": 1}
        assert d["duration_ns"] >= 0


class TestCommEvents:
    def test_records_event_with_breakdown(self):
        tr = SpanTracer()
        with tr.span("phase.bu_allgather"):
            tr.comm_event(
                "allgather",
                nbytes=1024.0,
                rank_times=np.array([1.0, 3.0]),
                breakdown={"inter": 3.0},
                algorithm="leader",
                part_bytes=512.0,
            )
        ev = tr.events[0]
        assert ev.op == "allgather"
        assert ev.max_time_ns == 3.0
        assert ev.span == "phase.bu_allgather"
        assert ev.algorithm == "leader"
        assert ev.attrs["part_bytes"] == 512.0
        assert ev.as_dict()["kind"] == "comm_event"

    def test_metrics_updated(self):
        reg = MetricsRegistry()
        tr = SpanTracer(metrics=reg)
        tr.comm_event(
            "alltoallv",
            nbytes=100.0,
            rank_times=[5.0],
            breakdown={"alltoallv": 5.0},
            intra_bytes=60.0,
            inter_bytes=30.0,
            self_bytes=10.0,
        )
        snap = reg.as_dict()["counters"]
        assert snap["comm.calls_total{op=alltoallv}"] == 1
        assert snap["comm.bytes_total{op=alltoallv}"] == 100.0
        assert snap["comm.channel_bytes_total{channel=intra}"] == 60.0
        assert snap["comm.channel_bytes_total{channel=inter}"] == 30.0


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        sp1 = NULL_TRACER.span("anything", cat="x", attr=1)
        sp2 = NULL_TRACER.span("other")
        assert sp1 is sp2  # one shared no-op span, no allocation per call
        with sp1 as s:
            s.set(ignored=True)
        NULL_TRACER.instant("marker")
        NULL_TRACER.comm_event("allgather", nbytes=1.0)
        assert isinstance(NULL_TRACER, NullTracer)

    def test_engine_default_has_no_telemetry(self):
        g = rmat_graph(scale=11, seed=6)
        engine = BFSEngine(g, paper_cluster(nodes=1), BFSConfig.original_ppn8())
        result = engine.run(0)
        assert result.telemetry is None
        assert engine.tracer is NULL_TRACER
        assert engine.comm.tracer is NULL_TRACER

    def test_traced_run_matches_untraced(self):
        """Telemetry must not perturb the functional result."""
        g = rmat_graph(scale=11, seed=6)
        cluster = paper_cluster(nodes=2)
        cfg = BFSConfig.original_ppn8()
        root = int(np.argmax(g.degrees()))
        plain = BFSEngine(g, cluster, cfg).run(root)
        traced = BFSEngine(
            g, cluster, cfg, tracer=SpanTracer(), metrics=MetricsRegistry()
        ).run(root)
        assert np.array_equal(plain.parent, traced.parent)
        assert plain.seconds == pytest.approx(traced.seconds)
        assert traced.telemetry is not None


class TestEngineTelemetry:
    @pytest.fixture(scope="class")
    def traced(self):
        g = rmat_graph(scale=11, seed=6)
        reg = MetricsRegistry()
        tr = SpanTracer(metrics=reg)
        engine = BFSEngine(
            g,
            paper_cluster(nodes=2),
            BFSConfig.granularity_variant(256),
            tracer=tr,
            metrics=reg,
        )
        return engine.run(int(np.argmax(g.degrees())))

    def test_one_level_span_per_level(self, traced):
        levels = [s for s in traced.telemetry.spans if s.name == "level"]
        assert len(levels) == traced.levels
        assert [s.attrs["level"] for s in levels] == list(range(traced.levels))

    def test_phase_spans_nested_under_levels(self, traced):
        spans = traced.telemetry.spans
        by_index = {s.index: s for s in spans}
        phases = [s for s in spans if s.name.startswith("phase.")]
        assert phases, "no phase spans recorded"
        for p in phases:
            assert by_index[p.parent].name == "level"

    def test_per_rank_kernel_spans(self, traced):
        spans = traced.telemetry.spans
        scans = [s for s in spans if s.name == "bu.scan"]
        expands = [s for s in spans if s.name == "td.expand"]
        num_ranks = traced.counts.num_ranks
        bu_levels = sum(
            1 for lc in traced.counts.levels if lc.direction == "bottom_up"
        )
        td_levels = traced.levels - bu_levels
        assert len(scans) == bu_levels * num_ranks
        assert len(expands) == td_levels * num_ranks
        assert all("examined_edges" in s.attrs for s in scans)

    def test_direction_markers(self, traced):
        markers = [
            s for s in traced.telemetry.spans if s.name == "direction.decide"
        ]
        assert len(markers) == traced.levels
        directions = [m.attrs["direction"] for m in markers]
        assert directions == [lc.direction for lc in traced.counts.levels]

    def test_comm_events_per_collective(self, traced):
        events = traced.telemetry.comm_events
        allgathers = [e for e in events if e.op == "allgather"]
        alltoallvs = [e for e in events if e.op == "alltoallv"]
        bu_levels = sum(
            1 for lc in traced.counts.levels if lc.direction == "bottom_up"
        )
        td_levels = traced.levels - bu_levels
        assert len(allgathers) == bu_levels
        assert len(alltoallvs) == td_levels
        for e in events:
            assert len(e.rank_times) == traced.counts.num_ranks
            assert e.breakdown

    def test_metrics_recorded(self, traced):
        snap = traced.telemetry.metrics.as_dict()
        assert snap["counters"]["bfs.runs_total"] == 1
        phase_keys = [
            k for k in snap["counters"] if k.startswith("bfs.phase_sim_ns_total")
        ]
        assert len(phase_keys) == 6
        assert snap["histograms"]["bfs.level_stall_ns"]["count"] > 0

    def test_run_telemetry_from_tracer(self):
        tr = SpanTracer()
        with tr.span("a"):
            tr.comm_event("barrier")
        tel = RunTelemetry.from_tracer(tr)
        assert tel.spans is tr.spans
        assert tel.comm_events is tr.events
        assert isinstance(tel.spans[0], Span)
        assert isinstance(tel.comm_events[0], CommEvent)
