"""Tests for the opt-in host-side phase profiler (``repro.obs.hostprof``)."""

import re

import pytest

from repro.core import BFSConfig, BFSEngine
from repro.graph import rmat_graph
from repro.machine import paper_cluster
from repro.obs.hostprof import (
    NULL_HOSTPROF,
    HostProfiler,
    NullHostProfiler,
    collapsed_stacks,
)


def _scripted_clock(ticks):
    """A fake perf_counter_ns that returns the given values in order."""
    it = iter(ticks)
    return lambda: next(it)


class TestNullProfiler:
    def test_disabled_and_shared(self):
        assert NULL_HOSTPROF.enabled is False
        assert isinstance(NULL_HOSTPROF, NullHostProfiler)
        # The null phase is a single shared object: no per-call garbage
        # on the engine hot path.
        assert NULL_HOSTPROF.phase("a") is NULL_HOSTPROF.phase("b")

    def test_phase_is_inert_context_manager(self):
        with NULL_HOSTPROF.phase("anything") as p:
            assert p is NULL_HOSTPROF.phase("anything")

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            with NULL_HOSTPROF.phase("x"):
                raise RuntimeError("boom")


class TestPhaseAccounting:
    def test_exact_self_time_attribution(self):
        # Scripted clock: session start 0; outer starts at 10; inner runs
        # 20 -> 50; outer ends at 100; session ends at 100.
        clock = _scripted_clock([0, 10, 20, 50, 100, 100])
        hp = HostProfiler(trace_memory=False, profile_calls=False, clock=clock)
        with hp.profile():
            with hp.phase("outer"):
                with hp.phase("inner"):
                    pass
        report = hp.report()
        phases = {p.name: p for p in report.phases}
        assert phases["inner"].total_ns == 30
        assert phases["inner"].self_ns == 30
        assert phases["outer"].total_ns == 90
        # Child time is subtracted exactly from the parent's self time.
        assert phases["outer"].self_ns == 60
        assert report.wall_ns == 100
        assert report.covered_ns == 90
        assert report.coverage == pytest.approx(0.9)

    def test_repeated_phases_aggregate(self):
        clock = _scripted_clock([0, 10, 20, 30, 45, 100, 100])
        hp = HostProfiler(trace_memory=False, profile_calls=False, clock=clock)
        with hp:
            with hp.phase("step"):
                pass
            with hp.phase("step"):
                pass
        phase = hp.report().phases[0]
        assert phase.name == "step"
        assert phase.calls == 2
        assert phase.total_ns == (20 - 10) + (45 - 30)
        assert phase.self_ns == phase.total_ns

    def test_session_cannot_nest(self):
        hp = HostProfiler(trace_memory=False, profile_calls=False)
        with hp:
            with pytest.raises(RuntimeError):
                hp.__enter__()

    def test_report_while_running_includes_inflight_wall(self):
        clock = _scripted_clock([0, 10, 20, 50, 80])
        hp = HostProfiler(trace_memory=False, profile_calls=False, clock=clock)
        hp.__enter__()
        with hp.phase("p"):
            pass
        report = hp.report()  # consumes one tick (50)
        assert report.wall_ns == 50
        hp.__exit__(None, None, None)
        assert hp.report().wall_ns == 80

    def test_as_dict_schema(self):
        hp = HostProfiler(trace_memory=False, profile_calls=False)
        with hp:
            with hp.phase("a"):
                pass
        doc = hp.report().as_dict()
        assert doc["schema"] == "repro.hostprof/v1"
        assert doc["traced_memory"] is False
        assert doc["phases"][0]["name"] == "a"
        assert set(doc["phases"][0]) == {
            "name", "calls", "total_s", "self_s", "peak_bytes",
        }

    def test_to_text_mentions_coverage(self):
        hp = HostProfiler(trace_memory=False, profile_calls=False)
        with hp:
            with hp.phase("a"):
                pass
        text = hp.report().to_text()
        assert "host profile" in text
        assert "coverage" in text


class TestTracedMemory:
    def test_phase_peak_sees_allocation(self):
        hp = HostProfiler(trace_memory=True, profile_calls=False)
        with hp:
            with hp.phase("alloc"):
                blob = bytearray(1 << 20)
            del blob
        phase = {p.name: p for p in hp.report().phases}["alloc"]
        assert phase.peak_bytes >= 1 << 20

    def test_child_peak_propagates_to_parent(self):
        hp = HostProfiler(trace_memory=True, profile_calls=False)
        with hp:
            with hp.phase("outer"):
                with hp.phase("inner"):
                    blob = bytearray(1 << 20)
                del blob
        phases = {p.name: p for p in hp.report().phases}
        assert phases["inner"].peak_bytes >= 1 << 20
        # The parent's high-water mark includes its child's.
        assert phases["outer"].peak_bytes >= phases["inner"].peak_bytes


class TestCollapsedStacks:
    def test_collapsed_format(self):
        hp = HostProfiler(trace_memory=False, profile_calls=True)

        def busy():
            return sum(i * i for i in range(20000))

        with hp:
            with hp.phase("busy"):
                busy()
        out = hp.collapsed(min_us=0)
        assert out, "expected at least one collapsed stack line"
        for line in out.strip().splitlines():
            # "frame;frame;frame weight" with integer microsecond weight.
            assert re.fullmatch(r"\S+ \d+", line), line
        assert "busy" in out

    def test_write_collapsed(self, tmp_path):
        hp = HostProfiler(trace_memory=False, profile_calls=True)
        with hp:
            sum(range(10000))
        out = tmp_path / "stacks.collapsed"
        hp.write_collapsed(out, min_us=0)
        assert out.read_text() == hp.collapsed(min_us=0)

    def test_disabled_cprofile_yields_empty(self):
        hp = HostProfiler(trace_memory=False, profile_calls=False)
        with hp:
            pass
        assert hp.collapsed() == ""

    def test_collapsed_stacks_cuts_cycles(self):
        import cProfile

        def rec(n):
            return 1 if n <= 0 else 1 + rec(n - 1)

        prof = cProfile.Profile()
        prof.enable()
        rec(100)
        prof.disable()
        out = collapsed_stacks(prof.getstats(), min_us=0)
        # The recursive frame appears at most once per stack line.
        for line in out.strip().splitlines():
            frames = line.rsplit(" ", 1)[0].split(";")
            rec_frames = [f for f in frames if ":rec" in f]
            assert len(rec_frames) <= 1, line


class TestEngineIntegration:
    def test_engine_phases_cover_wall_time(self):
        """Acceptance: per-phase self seconds sum to within 10 % of the
        profiled wall time when profiling a whole engine run."""
        g = rmat_graph(scale=10, seed=3)
        cluster = paper_cluster(nodes=2)
        hp = HostProfiler(trace_memory=True, profile_calls=False)
        engine = BFSEngine(g, cluster, BFSConfig(), hostprof=hp)
        with hp.profile():
            engine.run(0)
        report = hp.report()
        names = {p.name for p in report.phases}
        assert "run" in names
        assert "frontier_stats" in names
        # The engine wraps the whole traversal in a "run" phase, so
        # phase self-times must sum to within 10 % of the session wall.
        assert report.coverage > 0.9
        covered = sum(p.self_ns for p in report.phases)
        run_total = next(
            p.total_ns for p in report.phases if p.name == "run"
        )
        assert covered >= run_total  # run plus the pricing slice

    def test_engine_default_is_null_profiler(self):
        g = rmat_graph(scale=10, seed=1)
        engine = BFSEngine(g, paper_cluster(nodes=1), BFSConfig())
        assert engine.hostprof is NULL_HOSTPROF
        assert engine.hostprof.enabled is False
