"""Tests for sub-communicators."""

import numpy as np
import pytest

from repro.errors import CommunicationError
from repro.machine import paper_cluster
from repro.mpi import ProcessMapping, SimComm
from repro.mpi.subcomm import SubComm, split


@pytest.fixture()
def comm():
    cluster = paper_cluster(nodes=2)
    return SimComm(cluster, ProcessMapping(cluster, ppn=4))


class TestSplit:
    def test_split_by_node(self, comm):
        colors = [comm.mapping.node_of(r) for r in range(comm.num_ranks)]
        subs = split(comm, colors)
        assert set(subs) == {0, 1}
        assert subs[0].members == (0, 1, 2, 3)
        assert subs[1].members == (4, 5, 6, 7)

    def test_split_by_local_index_fig7_subgroups(self, comm):
        """The Fig. 7 subgroups: equal local index across nodes."""
        colors = [comm.mapping.local_index(r) for r in range(comm.num_ranks)]
        subs = split(comm, colors)
        assert subs[0].members == (0, 4)
        assert subs[3].members == (3, 7)

    def test_keys_reorder_members(self, comm):
        colors = [0] * comm.num_ranks
        keys = list(range(comm.num_ranks))[::-1]
        subs = split(comm, colors, keys)
        assert subs[0].members == tuple(range(comm.num_ranks))[::-1]

    def test_validation(self, comm):
        with pytest.raises(CommunicationError):
            split(comm, [0])
        with pytest.raises(CommunicationError):
            split(comm, [0] * comm.num_ranks, keys=[0])


class TestSubCommTranslation:
    def test_rank_round_trip(self, comm):
        sub = split(comm, [r % 2 for r in range(comm.num_ranks)])[1]
        for local in range(sub.size):
            assert sub.local_rank(sub.global_rank(local)) == local

    def test_non_member_rejected(self, comm):
        sub = split(comm, [r % 2 for r in range(comm.num_ranks)])[1]
        with pytest.raises(CommunicationError):
            sub.local_rank(0)  # rank 0 has color 0
        with pytest.raises(CommunicationError):
            sub.global_rank(sub.size)

    def test_direct_construction_validation(self, comm):
        with pytest.raises(CommunicationError):
            SubComm(parent=comm, color=0, members=())
        with pytest.raises(CommunicationError):
            SubComm(parent=comm, color=0, members=(0, 0))
        with pytest.raises(CommunicationError):
            SubComm(parent=comm, color=0, members=(99,))


class TestSubCommCollectives:
    def test_allgatherv_functional(self, comm):
        colors = [comm.mapping.node_of(r) for r in range(comm.num_ranks)]
        sub = split(comm, colors)[0]
        parts = [
            np.full(4, i, dtype=np.uint64) for i in range(sub.size)
        ]
        res = sub.allgatherv(parts)
        assert np.array_equal(res.data, np.concatenate(parts))
        assert res.rank_times.shape == (sub.size,)
        assert res.max_time > 0

    def test_allgatherv_wrong_count(self, comm):
        sub = split(comm, [0] * comm.num_ranks)[0]
        with pytest.raises(CommunicationError):
            sub.allgatherv([np.zeros(1, np.uint64)])

    def test_cross_node_subgroup_costs_more(self, comm):
        """A subgroup spanning nodes pays InfiniBand; a within-node
        subgroup only shared-memory copies."""
        part = np.zeros(1 << 16, dtype=np.uint64)
        within = split(
            comm, [comm.mapping.node_of(r) for r in range(comm.num_ranks)]
        )[0]
        across = split(
            comm, [comm.mapping.local_index(r) for r in range(comm.num_ranks)]
        )[0]
        t_within = within.allgatherv([part] * within.size).max_time
        t_across = across.allgatherv([part] * across.size).max_time
        assert t_within != t_across  # different channel classes

    def test_alltoallv_time_embedding(self, comm):
        sub = split(comm, [r % 2 for r in range(comm.num_ranks)])[0]
        m = np.zeros((sub.size, sub.size))
        m[0, 1] = 2**20
        times = sub.alltoallv_time(m)
        # Matches the parent pricing for the same global pair.
        full = np.zeros((comm.num_ranks, comm.num_ranks))
        full[sub.global_rank(0), sub.global_rank(1)] = 2**20
        expected = comm.alltoallv_time(full)
        assert times[0] == expected[sub.global_rank(0)]

    def test_alltoallv_shape_checked(self, comm):
        sub = split(comm, [0] * comm.num_ranks)[0]
        with pytest.raises(CommunicationError):
            sub.alltoallv_time(np.zeros((2, 2)))
