"""Tests for the Graph500 evaluation driver."""

import numpy as np
import pytest

from repro.core import BFSConfig, run_graph500
from repro.graph import rmat_graph
from repro.machine import paper_cluster


@pytest.fixture(scope="module")
def setup():
    graph = rmat_graph(scale=11, seed=6)
    cluster = paper_cluster(nodes=2)
    return graph, cluster


class TestRunGraph500:
    def test_basic_protocol(self, setup):
        graph, cluster = setup
        res = run_graph500(
            graph, cluster, BFSConfig.original_ppn8(), num_roots=4, seed=1
        )
        assert len(res.per_root_teps) == 4
        assert res.harmonic_mean_teps > 0
        assert res.mean_seconds > 0
        assert len(res.results) == 4

    def test_harmonic_mean_dominated_by_slowest(self, setup):
        graph, cluster = setup
        res = run_graph500(
            graph, cluster, BFSConfig.original_ppn8(), num_roots=4, seed=1
        )
        assert res.harmonic_mean_teps <= max(res.per_root_teps)
        assert res.harmonic_mean_teps >= min(res.per_root_teps)

    def test_validation_path(self, setup):
        graph, cluster = setup
        res = run_graph500(
            graph,
            cluster,
            BFSConfig.original_ppn8(),
            num_roots=2,
            seed=3,
            validate=True,
        )
        assert all(r.visited > 0 for r in res.results)

    def test_deterministic(self, setup):
        graph, cluster = setup
        r1 = run_graph500(
            graph, cluster, BFSConfig.original_ppn8(), num_roots=3, seed=5
        )
        r2 = run_graph500(
            graph, cluster, BFSConfig.original_ppn8(), num_roots=3, seed=5
        )
        assert np.array_equal(r1.roots, r2.roots)
        assert r1.per_root_teps == r2.per_root_teps

    def test_mean_breakdown_averages(self, setup):
        graph, cluster = setup
        res = run_graph500(
            graph, cluster, BFSConfig.original_ppn8(), num_roots=3, seed=2
        )
        bd = res.mean_breakdown()
        expected_total = np.mean(
            [r.timing.breakdown.total for r in res.results]
        )
        assert bd.total == pytest.approx(expected_total)

    def test_mean_bu_comm_per_level(self, setup):
        graph, cluster = setup
        res = run_graph500(
            graph, cluster, BFSConfig.original_ppn8(), num_roots=2, seed=2
        )
        assert res.mean_bu_comm_per_level() > 0
