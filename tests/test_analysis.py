"""Tests for the BFS-powered analytics layer, against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.analysis import (
    bfs_tree,
    connected_components,
    degrees_of_separation,
    estimate_diameter,
    shortest_hops,
)
from repro.errors import GraphError
from repro.graph import (
    cycle_graph,
    from_edge_arrays,
    grid_graph,
    path_graph,
    rmat_graph,
)
from repro.machine import paper_cluster


def to_networkx(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    for v in range(graph.num_vertices):
        for u in graph.neighbors(v):
            g.add_edge(v, int(u))
    return g


@pytest.fixture(scope="module")
def small_cluster():
    return paper_cluster(nodes=1)


class TestShortestHops:
    def test_grid_distances(self, small_cluster):
        g = grid_graph(16, 32)
        hops, cost = shortest_hops(g, 0, cluster=small_cluster)
        assert hops[511] == 15 + 31  # manhattan distance on the grid
        assert cost.traversals == 1
        assert cost.simulated_seconds > 0

    def test_matches_networkx_on_rmat(self, small_cluster):
        g = rmat_graph(scale=11, seed=5)
        root = int(np.argmax(g.degrees()))
        hops, _ = shortest_hops(g, root, cluster=small_cluster)
        ref = nx.single_source_shortest_path_length(to_networkx(g), root)
        expected = np.full(g.num_vertices, -1, dtype=np.int64)
        for v, d in ref.items():
            expected[v] = d
        assert np.array_equal(hops, expected)


class TestBfsTree:
    def test_tree_edges_exist(self, small_cluster):
        g = cycle_graph(512)
        parent, _ = bfs_tree(g, 5, cluster=small_cluster)
        for v in range(512):
            if v != 5 and parent[v] >= 0:
                assert g.has_edge(int(parent[v]), v)


class TestConnectedComponents:
    def test_matches_networkx(self, small_cluster):
        # Three components: a path, a triangle, isolated vertices.
        src = np.array([0, 1, 2, 10, 11, 12])
        dst = np.array([1, 2, 3, 11, 12, 10])
        g = from_edge_arrays(512, src, dst)
        labels, cost = connected_components(g, cluster=small_cluster)
        assert np.all(labels >= 0)
        ref = list(nx.connected_components(to_networkx(g)))
        assert len(set(labels.tolist())) == len(ref)
        # Vertices in one reference component share one label.
        for comp in ref:
            comp_labels = {int(labels[v]) for v in comp}
            assert len(comp_labels) == 1
        assert cost.traversals == 2  # two non-trivial components

    def test_max_components_early_stop(self, small_cluster):
        src = np.array([0, 10, 20])
        dst = np.array([1, 11, 21])
        g = from_edge_arrays(512, src, dst)
        labels, _ = connected_components(
            g, cluster=small_cluster, max_components=507
        )
        # 506 isolated singletons + 1 BFS component, then stop.
        assert np.count_nonzero(labels < 0) > 0

    def test_rmat_component_count(self, small_cluster):
        g = rmat_graph(scale=10, seed=7)
        labels, _ = connected_components(g, cluster=small_cluster)
        assert len(set(labels.tolist())) == nx.number_connected_components(
            to_networkx(g)
        )


class TestDiameter:
    def test_path_graph_exact(self, small_cluster):
        g = path_graph(512)
        diameter, cost = estimate_diameter(g, cluster=small_cluster, sweeps=2)
        assert diameter == 511  # double sweep is exact on trees
        assert cost.traversals == 2

    def test_lower_bound_on_rmat(self, small_cluster):
        g = rmat_graph(scale=10, seed=3)
        est, _ = estimate_diameter(g, cluster=small_cluster, sweeps=2)
        # The estimate is a lower bound on the true diameter of the
        # largest component.
        comp = max(nx.connected_components(to_networkx(g)), key=len)
        true = nx.diameter(to_networkx(g).subgraph(comp))
        assert 0 < est <= true

    def test_sweeps_validation(self, small_cluster):
        with pytest.raises(GraphError):
            estimate_diameter(path_graph(512), sweeps=0)

    def test_empty_graph(self, small_cluster):
        g = from_edge_arrays(512, [], [])
        est, cost = estimate_diameter(g, cluster=small_cluster)
        assert est == 0
        assert cost.traversals == 0


class TestDegreesOfSeparation:
    def test_histogram(self, small_cluster):
        g = path_graph(512)
        hist, cost = degrees_of_separation(
            g, np.array([0]), cluster=small_cluster
        )
        assert hist.counts[0] == 1
        assert hist.counts[511] == 1
        assert hist.fraction_within(511) == 1.0
        assert hist.fraction_within(255) == pytest.approx(256 / 512)
        assert cost.traversals == 1

    def test_unreachable_counted(self, small_cluster):
        g = from_edge_arrays(512, [0], [1])
        hist, _ = degrees_of_separation(g, np.array([0]), cluster=small_cluster)
        assert hist.unreachable == 510

    def test_empty_seeds_rejected(self, small_cluster):
        with pytest.raises(GraphError):
            degrees_of_separation(
                path_graph(512), np.array([], dtype=np.int64)
            )

    def test_empty_histogram_fraction(self):
        from repro.analysis.algorithms import SeparationHistogram

        assert SeparationHistogram().fraction_within(3) == 0.0
