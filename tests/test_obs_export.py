"""Tests for the telemetry exporters: Chrome trace, JSONL log, CLI."""

import json

import numpy as np
import pytest

from repro.core import BFSConfig, BFSEngine
from repro.graph import rmat_graph
from repro.machine import paper_cluster
from repro.obs.export import (
    chrome_trace,
    events_jsonl,
    rank_timeline,
    summary_table,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanTracer


@pytest.fixture(scope="module")
def traced_result():
    """One traced hybrid run on a small cluster (both directions exercised)."""
    g = rmat_graph(scale=11, seed=6)
    reg = MetricsRegistry()
    tr = SpanTracer(metrics=reg)
    engine = BFSEngine(
        g,
        paper_cluster(nodes=2),
        BFSConfig.granularity_variant(256),
        tracer=tr,
        metrics=reg,
    )
    return engine.run(int(np.argmax(g.degrees())))


class TestRankTimeline:
    def test_one_track_per_rank(self, traced_result):
        tracks = rank_timeline(traced_result)
        assert len(tracks) == traced_result.counts.num_ranks
        assert all(tracks), "every rank has at least one interval"

    def test_intervals_monotone_and_disjoint(self, traced_result):
        for track in rank_timeline(traced_result):
            cursor = 0.0
            for iv in track:
                assert iv["duration_ns"] > 0
                assert iv["start_ns"] >= cursor - 1e-6
                cursor = iv["start_ns"] + iv["duration_ns"]

    def test_every_level_on_every_track(self, traced_result):
        for track in rank_timeline(traced_result):
            levels = sorted({iv["level"] for iv in track})
            assert levels == list(range(traced_result.levels))

    def test_final_clock_matches_priced_total(self, traced_result):
        tracks = rank_timeline(traced_result)
        ends = [t[-1]["start_ns"] + t[-1]["duration_ns"] for t in tracks]
        total = traced_result.timing.total_ns
        assert max(ends) == pytest.approx(total, rel=0.02)

    def test_phase_order_within_level(self, traced_result):
        order = {"switch": 0, "comm": 1, "compute": 2, "stall": 3}
        for track in rank_timeline(traced_result):
            by_level = {}
            for iv in track:
                by_level.setdefault(iv["level"], []).append(iv)
            for ivs in by_level.values():
                cats = [iv["cat"] for iv in ivs]
                if ivs[0]["direction"] == "bottom_up":
                    ranks = [order[c] for c in cats]
                else:  # top-down: comm (exchange) comes after compute
                    order_td = {"switch": 0, "compute": 1, "stall": 2, "comm": 3}
                    ranks = [order_td[c] for c in cats]
                assert ranks == sorted(ranks)

    def test_uniform_fallback_without_rank_detail(self, traced_result):
        saved = [lt.compute_rank_ns for lt in traced_result.timing.levels]
        for lt in traced_result.timing.levels:
            lt.compute_rank_ns = None
        try:
            tracks = rank_timeline(traced_result)
            assert len(tracks) == traced_result.counts.num_ranks
            stalls = [
                iv for t in tracks for iv in t if iv["cat"] == "stall"
            ]
            assert stalls == []  # uniform compute -> nobody waits
        finally:  # the fixture is module-shared; restore the detail
            for lt, rank_ns in zip(traced_result.timing.levels, saved):
                lt.compute_rank_ns = rank_ns


class TestChromeTrace:
    def test_valid_json_with_rank_tracks(self, traced_result, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), traced_result)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == traced_result.counts.num_ranks
        assert {e["args"]["name"] for e in meta} == {
            f"rank {r}" for r in range(traced_result.counts.num_ranks)
        }
        assert doc["otherData"]["num_ranks"] == traced_result.counts.num_ranks
        assert doc["otherData"]["levels"] == traced_result.levels

    def test_x_events_monotone_per_track(self, traced_result):
        doc = chrome_trace(traced_result)
        per_pid = {}
        for e in doc["traceEvents"]:
            if e["ph"] != "X":
                continue
            assert e["dur"] > 0
            cursor = per_pid.get(e["pid"], 0.0)
            assert e["ts"] >= cursor - 1e-9
            per_pid[e["pid"]] = e["ts"] + e["dur"]
        assert len(per_pid) == traced_result.counts.num_ranks

    def test_span_per_level_phase(self, traced_result):
        doc = chrome_trace(traced_result)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in xs}
        directions = {lc.direction for lc in traced_result.counts.levels}
        for d in directions:
            assert f"compute:{d}" in names
            assert f"comm:{d}" in names
        # every (pid, level) has a compute event
        seen = {
            (e["pid"], e["args"]["level"])
            for e in xs
            if e["name"].startswith("compute:")
        }
        assert len(seen) == traced_result.counts.num_ranks * traced_result.levels

    def test_comm_args_carry_step_breakdown(self, traced_result):
        doc = chrome_trace(traced_result)
        comms = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"].startswith("comm:")
        ]
        assert comms
        stepped = [
            e for e in comms if set(e["args"]) - {"level", "direction"}
        ]
        assert stepped, "no comm event carries a collective step breakdown"


class TestEventsJsonl:
    def test_lines_parse_and_cover_both_kinds(self, traced_result, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events_jsonl(str(path), traced_result.telemetry)
        kinds = set()
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                rec = json.loads(line)
                kinds.add(rec["kind"])
        assert kinds == {"span", "comm_event"}

    def test_span_count_matches_telemetry(self, traced_result):
        text = events_jsonl(traced_result.telemetry)
        records = [json.loads(line) for line in text.splitlines()]
        tel = traced_result.telemetry
        assert len(records) == len(tel.spans) + len(tel.comm_events)


@pytest.fixture(scope="module")
def codec_traced_result():
    """A traced run with the auto frontier codec active (codec-aware
    raw/wire accounting on every collective event)."""
    import dataclasses

    g = rmat_graph(scale=11, seed=6)
    cfg = BFSConfig.granularity_variant(256)
    cfg = dataclasses.replace(
        cfg, comm=dataclasses.replace(cfg.comm, codec="auto")
    )
    tr = SpanTracer()
    engine = BFSEngine(g, paper_cluster(nodes=2), cfg, tracer=tr)
    return engine.run(int(np.argmax(g.degrees())))


class TestCodecAwareExport:
    """Satellite: raw/wire byte args on CommEvents flow end-to-end
    through the JSONL log and the Chrome export."""

    def test_comm_events_carry_raw_wire_and_codec(self, codec_traced_result):
        events = codec_traced_result.telemetry.comm_events
        allgathers = [ev for ev in events if ev.op == "allgather"]
        assert allgathers, "no allgather events traced"
        for ev in allgathers:
            d = ev.as_dict()
            assert d["raw_bytes"] is not None
            assert d["wire_bytes"] is not None
            assert d["codec"] is not None
            # the auto codec picks the cheapest encoding, never inflates
            assert d["wire_bytes"] <= d["raw_bytes"]

    def test_events_jsonl_preserves_byte_accounting(
        self, codec_traced_result, tmp_path
    ):
        path = tmp_path / "events.jsonl"
        write_events_jsonl(str(path), codec_traced_result.telemetry)
        comm_lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line)["kind"] == "comm_event"
        ]
        assert comm_lines
        allgathers = [r for r in comm_lines if r["op"] == "allgather"]
        assert allgathers
        for rec in allgathers:
            assert {"raw_bytes", "wire_bytes", "codec"} <= set(rec)
            assert rec["wire_bytes"] <= rec["raw_bytes"]

    def test_rank_timeline_comm_args_carry_allgather_steps(
        self, codec_traced_result
    ):
        bu_comm = [
            iv
            for track in rank_timeline(codec_traced_result)
            for iv in track
            if iv["cat"] == "comm" and iv["direction"] == "bottom_up"
        ]
        assert bu_comm
        for iv in bu_comm:
            assert any(k.startswith("inq_") for k in iv["args"]), iv["args"]

    def test_chrome_trace_passes_comm_args_through(self, codec_traced_result):
        doc = chrome_trace(codec_traced_result)
        bu_comms = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "comm:bottom_up"
        ]
        assert bu_comms
        for e in bu_comms:
            assert any(k.startswith("inq_") for k in e["args"])


class TestSummaryTable:
    def test_renders_all_metric_kinds(self, traced_result):
        table = summary_table(traced_result.telemetry.metrics)
        assert "bfs.runs_total" in table
        assert "histogram" in table
        assert "gauge" in table

    def test_empty_registry_renders(self):
        assert "no metrics recorded" in summary_table(MetricsRegistry())

    def test_labels_get_their_own_column(self):
        # Label sets of differing arity must not make rows ragged: the
        # metric column holds only the family name, labels a separate one.
        reg = MetricsRegistry()
        reg.counter("bfs.runs_total").inc()
        reg.counter("comm.step_sim_time_ns_total", op="allgather",
                    step="inter").inc(5)
        reg.gauge("bfs.last_run.teps").set(1e9)
        table = summary_table(reg)
        header = table.splitlines()[1]
        assert [c.strip() for c in header.split("|")] == [
            "metric", "labels", "type", "value",
        ]
        row = next(
            ln for ln in table.splitlines()
            if ln.startswith("comm.step_sim_time_ns_total")
        )
        assert "op=allgather,step=inter" in row
        assert "{" not in row  # labels no longer embedded in the name

    def test_rows_sorted_across_metric_kinds(self):
        reg = MetricsRegistry()
        reg.histogram("a.hist").observe(1.0)
        reg.counter("z.counter").inc()
        reg.gauge("m.gauge").set(2.0)
        reg.counter("a.counter", op="x").inc()
        lines = summary_table(reg).splitlines()[3:]
        names = [ln.split("|")[0].strip() for ln in lines]
        assert names == sorted(names)

    def test_histogram_cell_shows_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (1.0, 2.0, 100.0):
            h.observe(v)
        table = summary_table(reg)
        assert "p50=" in table and "p99=" in table


class TestCliTraceOut:
    def test_fig09_quick_trace_out(self, tmp_path):
        """Acceptance: fig09 --quick --trace-out writes a Chrome trace with
        >= 1 track per simulated rank and >= 1 span per BFS level-phase."""
        from repro.experiments.cli import main
        from repro.obs.metrics import reset_default_registry

        reset_default_registry()
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        rc = main(
            [
                "fig09",
                "--quick",
                "--trace-out",
                str(trace_path),
                "--metrics-out",
                str(metrics_path),
            ]
        )
        assert rc == 0

        doc = json.loads(trace_path.read_text())
        num_ranks = doc["otherData"]["num_ranks"]
        levels = doc["otherData"]["levels"]
        assert num_ranks >= 1 and levels >= 2
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == num_ranks  # one track per simulated rank
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        # >= 1 span per BFS level-phase: every level shows compute and,
        # past level 0, communication (ranks with zero work at a sparse
        # level legitimately emit no interval on their own track).
        compute_levels = {
            e["args"]["level"] for e in xs if e["name"].startswith("compute:")
        }
        assert compute_levels == set(range(levels))
        comm_levels = {
            e["args"]["level"] for e in xs if e["name"].startswith("comm:")
        }
        assert comm_levels >= set(range(1, levels))
        assert {e["pid"] for e in xs} == set(range(num_ranks))

        events_path = tmp_path / "t.json.events.jsonl"
        assert events_path.exists()
        first = json.loads(events_path.read_text().splitlines()[0])
        assert first["kind"] in {"span", "comm_event"}

        metrics = json.loads(metrics_path.read_text())
        assert any(
            k.startswith("experiment.wall_seconds{experiment=fig09}")
            for k in metrics["histograms"]
        )
        assert metrics["counters"]["bfs.runs_total"] >= 1
