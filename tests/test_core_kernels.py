"""Tests for the per-rank BFS kernels (state, top-down, bottom-up) and
the hybrid direction policy."""

import numpy as np
import pytest

from repro.core import BFSConfig, Bitmap, SummaryBitmap, TraversalMode
from repro.core import bottomup, topdown
from repro.core.counts import Direction
from repro.core.hybrid import DirectionPolicy, FrontierStats
from repro.core.state import RankState
from repro.errors import SimulationError
from repro.graph import Partition1D, path_graph, star_graph
from repro.graph.generators import cycle_graph


def single_rank_state(graph):
    part = Partition1D(graph.num_vertices, 1)
    return RankState(part.extract_local(graph, 0)), part


class TestRankState:
    def test_discover_first_writer_wins(self):
        st, _ = single_rank_state(path_graph(5))
        new = st.discover(np.array([2, 2, 3]), np.array([1, 4, 2]))
        assert new.tolist() == [2, 3]
        assert st.parent[2] == 1  # first occurrence kept

    def test_discover_skips_visited(self):
        st, _ = single_rank_state(path_graph(5))
        st.discover(np.array([2]), np.array([1]))
        new = st.discover(np.array([2]), np.array([3]))
        assert new.size == 0
        assert st.parent[2] == 1

    def test_unexplored_degree_tracked(self):
        g = star_graph(5)
        st, _ = single_rank_state(g)
        before = st.unexplored_degree
        st.discover(np.array([0]), np.array([0]))
        assert st.unexplored_degree == before - 4

    def test_unvisited_local_excludes_isolated(self):
        from repro.graph import from_edge_arrays

        g = from_edge_arrays(4, [0], [1])  # vertices 2, 3 isolated
        st, _ = single_rank_state(g)
        assert st.unvisited_local().tolist() == [0, 1]

    def test_to_local_range_check(self):
        g = path_graph(8)
        part = Partition1D(8, 2)
        st = RankState(part.extract_local(g, 1))
        assert st.to_local(np.array([4])).tolist() == [0]
        with pytest.raises(SimulationError):
            st.to_local(np.array([3]))

    def test_discover_shape_mismatch(self):
        st, _ = single_rank_state(path_graph(3))
        with pytest.raises(SimulationError):
            st.discover(np.array([0, 1]), np.array([0]))


class TestTopDown:
    def test_expand_routes_to_owners(self):
        g = path_graph(8)
        part = Partition1D(8, 2)
        st = RankState(part.extract_local(g, 0))
        # Frontier = global vertex 3 (local id 3 on rank 0); neighbours are
        # 2 (owned by rank 0) and 4 (owned by rank 1).
        send = topdown.expand(st, np.array([3]), part)
        assert send.frontier_size == 1
        assert send.examined_edges == 2
        assert send.outbox[0].tolist() == [[2, 3]]
        assert send.outbox[1].tolist() == [[4, 3]]

    def test_expand_dedupes_children(self):
        g = cycle_graph(4)
        part = Partition1D(4, 1)
        st = RankState(part.extract_local(g, 0))
        # Vertices 0 and 2 are both adjacent to 1 and 3.
        send = topdown.expand(st, np.array([0, 2]), part)
        children = sorted(send.outbox[0][:, 0].tolist())
        assert children == [1, 3]  # each child once despite two finders
        assert send.examined_edges == 4

    def test_expand_empty_frontier(self):
        g = path_graph(4)
        part = Partition1D(4, 2)
        st = RankState(part.extract_local(g, 1))
        send = topdown.expand(st, np.array([], dtype=np.int64), part)
        assert send.examined_edges == 0
        assert all(o.size == 0 for o in send.outbox)

    def test_apply_received_discovers_once(self):
        g = path_graph(4)
        part = Partition1D(4, 1)
        st = RankState(part.extract_local(g, 0))
        received = [
            np.array([[1, 0], [2, 1]], dtype=np.int64),
            np.array([[1, 2]], dtype=np.int64),
        ]
        new = topdown.apply_received(st, received)
        assert sorted(new.tolist()) == [1, 2]
        assert st.parent[1] == 0  # first message wins

    def test_apply_received_empty(self):
        g = path_graph(4)
        part = Partition1D(4, 1)
        st = RankState(part.extract_local(g, 0))
        new = topdown.apply_received(st, [np.zeros((0, 2), dtype=np.int64)])
        assert new.size == 0


class TestBottomUp:
    def setup_method(self):
        # Path 0-1-2-3-4-5, frontier = {2}; unvisited = all but 2.
        self.g = path_graph(6)
        self.part = Partition1D(6, 1)
        self.st = RankState(self.part.extract_local(self.g, 0))
        self.st.discover(np.array([2]), np.array([2]))
        self.inq = Bitmap.from_indices(6, np.array([2]))

    def test_scan_finds_neighbors_of_frontier(self):
        res = bottomup.scan(self.st, self.inq, None)
        assert sorted(res.new_local.tolist()) == [1, 3]
        assert self.st.parent[1] == 2
        assert self.st.parent[3] == 2
        assert res.candidates == 5  # all unvisited non-isolated

    def test_early_exit_examined_counts(self):
        res = bottomup.scan(self.st, self.inq, None)
        # v0: checks 1 -> miss (1 edge). v1: checks 0 (miss), 2 (hit) -> 2.
        # v3: checks 2 (hit) -> 1. v4: 3, 5 -> 2 misses. v5: 4 -> 1 miss.
        assert res.examined_edges == 1 + 2 + 1 + 2 + 1
        assert res.inqueue_reads == res.examined_edges  # no summary

    def test_summary_reduces_inqueue_reads(self):
        # Frontier block is bits 0..63; all of path fits in one block, so
        # use a bigger graph for a meaningful filter.
        g = path_graph(256)
        part = Partition1D(256, 1)
        st = RankState(part.extract_local(g, 0))
        st.discover(np.array([100]), np.array([100]))
        inq = Bitmap.from_indices(256, np.array([100]))
        summary = SummaryBitmap.build(inq, 64)
        res = bottomup.scan(st, inq, summary)
        st2 = RankState(part.extract_local(g, 0))
        st2.discover(np.array([100]), np.array([100]))
        res_nosum = bottomup.scan(st2, inq, None)
        assert res.examined_edges > 0
        assert res.inqueue_reads < res.examined_edges
        # The summary never changes what is discovered or examined.
        assert res.examined_edges == res_nosum.examined_edges

    def test_scan_without_candidates(self):
        st, part = self.st, self.part
        st.discover(np.arange(6)[st.parent < 0], np.zeros(5, dtype=np.int64))
        res = bottomup.scan(st, self.inq, None)
        assert res.candidates == 0
        assert res.new_local.size == 0

    def test_empty_frontier_discovers_nothing(self):
        res = bottomup.scan(self.st, Bitmap(6), None)
        assert res.new_local.size == 0
        # Every unvisited vertex scanned its whole adjacency.
        assert res.examined_edges == self.st.degrees[self.st.parent < 0].sum()


class TestDirectionPolicy:
    def stats(self, n_f=1, m_f=1, m_u=1000, n=1000):
        return FrontierStats(
            frontier_vertices=n_f,
            frontier_edges=m_f,
            unexplored_edges=m_u,
            num_vertices=n,
        )

    def test_starts_top_down(self):
        p = DirectionPolicy(BFSConfig())
        assert p.decide(self.stats()) == Direction.TOP_DOWN

    def test_switches_to_bottom_up_on_alpha(self):
        p = DirectionPolicy(BFSConfig(alpha=14))
        assert p.decide(self.stats(m_f=1, m_u=1000)) == Direction.TOP_DOWN
        assert p.decide(self.stats(m_f=100, m_u=1000)) == Direction.BOTTOM_UP

    def test_switches_back_on_beta_and_stays(self):
        p = DirectionPolicy(BFSConfig(alpha=14, beta=24))
        p.decide(self.stats(m_f=500, m_u=1000))  # -> bottom-up
        assert p.direction == Direction.BOTTOM_UP
        assert p.decide(self.stats(n_f=10, n=1000)) == Direction.TOP_DOWN
        # Even with a huge frontier again, no second bottom-up phase.
        assert p.decide(self.stats(m_f=10**9, m_u=1)) == Direction.TOP_DOWN

    def test_pure_modes(self):
        p = DirectionPolicy(BFSConfig(mode=TraversalMode.TOP_DOWN))
        assert p.decide(self.stats(m_f=10**9, m_u=1)) == Direction.TOP_DOWN
        p = DirectionPolicy(BFSConfig(mode=TraversalMode.BOTTOM_UP))
        assert p.decide(self.stats()) == Direction.BOTTOM_UP
