"""Tests for the analytic R-MAT level-profile model and the analytic
evaluation mode, including cross-validation against functional runs."""

import numpy as np
import pytest

from repro.core import BFSConfig, BFSEngine, CommConfig, TraversalMode
from repro.errors import ConfigError
from repro.graph import rmat_graph, degree_statistics
from repro.graph.degree import sample_roots
from repro.machine import paper_cluster
from repro.model.analytic import analytic_graph500
from repro.model.levelprofile import (
    rmat_degree_classes,
    simulate_level_profile,
    synthesize_run_counts,
)


class TestDegreeClasses:
    def test_mean_degree_exact(self):
        classes = rmat_degree_classes(scale=20, edgefactor=16)
        assert classes.mean_degree() == pytest.approx(32.0, rel=1e-9)

    def test_counts_sum_to_n(self):
        classes = rmat_degree_classes(scale=24)
        assert classes.count.sum() == pytest.approx(2**24, rel=1e-9)

    def test_matches_measured_isolated_fraction(self):
        """The Poisson-mixture isolated fraction tracks the real
        generator's output (clustering makes the real value a bit higher;
        allow a band)."""
        g = rmat_graph(scale=14, seed=2)
        measured = degree_statistics(g).isolated_fraction
        classes = rmat_degree_classes(scale=14)
        assert classes.isolated_fraction() == pytest.approx(measured, abs=0.1)

    def test_heavy_tail(self):
        """Maximum class rate grows with scale (hub degrees grow)."""
        l20 = rmat_degree_classes(20).lam.max()
        l28 = rmat_degree_classes(28).lam.max()
        assert l28 > 10 * l20

    def test_scale_validation(self):
        with pytest.raises(ConfigError):
            rmat_degree_classes(0)

    def test_scale_32_numerically_stable(self):
        classes = rmat_degree_classes(32)
        assert np.all(np.isfinite(classes.count))
        assert np.all(np.isfinite(classes.lam))
        assert classes.mean_degree() == pytest.approx(32.0, rel=1e-6)


class TestLevelProfile:
    def test_three_phase_structure_at_scale_32(self):
        classes = rmat_degree_classes(32)
        profile = simulate_level_profile(classes, BFSConfig.original_ppn8())
        dirs = [l.direction for l in profile]
        assert "bottom_up" in dirs
        first = dirs.index("bottom_up")
        last = len(dirs) - 1 - dirs[::-1].index("bottom_up")
        assert all(d == "top_down" for d in dirs[:first])
        assert all(d == "bottom_up" for d in dirs[first : last + 1])
        assert all(d == "top_down" for d in dirs[last + 1 :])

    def test_intermediate_ramp_level_exists_at_scale_32(self):
        """The level where the summary filter operates: the first
        bottom-up frontier must be sparse (densities around 1e-4..1e-2),
        which small functional runs cannot produce."""
        classes = rmat_degree_classes(32)
        profile = simulate_level_profile(classes, BFSConfig.original_ppn8())
        first_bu = next(l for l in profile if l.direction == "bottom_up")
        assert 1e-5 < first_bu.frontier_density < 3e-2

    def test_reached_fraction_matches_functional(self):
        """Total reached mass at a measurable scale agrees with a real
        run within a modest band."""
        scale = 14
        g = rmat_graph(scale=scale, seed=2)
        cluster = paper_cluster(nodes=1)
        root = int(sample_roots(g, 1, seed=3)[0])
        res = BFSEngine(g, cluster, BFSConfig.original_ppn8()).run(root)
        measured_frac = res.visited / g.num_vertices

        classes = rmat_degree_classes(scale)
        profile = simulate_level_profile(classes, BFSConfig.original_ppn8())
        analytic_frac = sum(l.discovered for l in profile) / 2**scale
        assert analytic_frac == pytest.approx(measured_frac, abs=0.15)

    def test_examined_edges_close_to_functional(self):
        """Total examined edges (the dominant compute driver) from the
        recursion should be within ~2x of a measured run."""
        scale = 14
        g = rmat_graph(scale=scale, seed=2)
        cluster = paper_cluster(nodes=1)
        root = int(sample_roots(g, 1, seed=3)[0])
        res = BFSEngine(g, cluster, BFSConfig.original_ppn8()).run(root)
        measured = res.counts.total_examined_edges()

        classes = rmat_degree_classes(scale)
        profile = simulate_level_profile(classes, BFSConfig.original_ppn8())
        analytic = sum(l.examined_edges for l in profile)
        assert measured / 2.5 < analytic < measured * 2.5

    def test_pure_modes(self):
        classes = rmat_degree_classes(24)
        td = simulate_level_profile(
            classes, BFSConfig(mode=TraversalMode.TOP_DOWN)
        )
        bu = simulate_level_profile(
            classes, BFSConfig(mode=TraversalMode.BOTTOM_UP)
        )
        assert all(l.direction == "top_down" for l in td)
        assert all(l.direction == "bottom_up" for l in bu)
        # Pure top-down examines every reached edge endpoint; pure
        # bottom-up pays giant scans on the early levels.
        assert sum(l.examined_edges for l in bu) > sum(
            l.examined_edges for l in td
        )

    def test_terminates(self):
        classes = rmat_degree_classes(32)
        profile = simulate_level_profile(classes, BFSConfig.original_ppn8())
        assert len(profile) < 30
        assert profile[-1].frontier_vertices >= 0.5


class TestSynthesizeAndAnalytic:
    def test_synthesized_counts_priceable(self):
        counts, arcs = synthesize_run_counts(
            28, BFSConfig.original_ppn8(), num_ranks=64
        )
        counts.validate()
        assert counts.num_vertices == 2**28
        assert arcs == 2 * 16 * 2**28
        assert counts.traversed_edges > 0

    def test_analytic_graph500_runs(self):
        cluster = paper_cluster(nodes=16)
        res = analytic_graph500(cluster, BFSConfig.original_ppn8(), 32)
        assert res.seconds > 0
        assert 1e9 < res.teps < 200e9
        assert res.mean_bu_comm_per_level() > 0

    def test_granularity_tradeoff_has_interior_peak(self):
        """Fig. 16: performance peaks at an intermediate granularity and
        falls off for very large blocks."""
        cluster = paper_cluster(nodes=16)
        teps = {
            g: analytic_graph500(
                cluster, BFSConfig.granularity_variant(g), 32
            ).teps
            for g in (64, 256, 4096)
        }
        assert teps[256] > teps[64]
        assert teps[256] > teps[4096]

    def test_summary_disabled_slower_at_scale(self):
        cluster = paper_cluster(nodes=16)
        with_summary = analytic_graph500(
            cluster, BFSConfig.original_ppn8(), 32
        )
        without = analytic_graph500(
            cluster, BFSConfig(comm=CommConfig(use_summary=False)), 32
        )
        assert without.seconds > with_summary.seconds

    def test_optimization_stack_ordering_analytic(self):
        cluster = paper_cluster(nodes=16)
        teps = [
            analytic_graph500(cluster, cfg, 32).teps
            for cfg in (
                BFSConfig.original_ppn8(),
                BFSConfig.share_in_queue_variant(),
                BFSConfig.share_all_variant(),
                BFSConfig.par_allgather_variant(),
            )
        ]
        assert teps == sorted(teps)
