"""Tests for the Graph500 validator — it must accept correct trees and
reject each class of corruption."""

import numpy as np
import pytest

from repro.core import BFSConfig, BFSEngine
from repro.core.validate import compute_levels, validate_parent_tree
from repro.errors import ValidationError
from repro.graph import grid_graph, path_graph, rmat_graph
from repro.machine import paper_cluster
from repro.mpi import BindingPolicy


def good_tree():
    """A valid BFS tree on a path graph."""
    g = path_graph(6)
    parent = np.array([0, 0, 1, 2, 3, 4], dtype=np.int64)
    return g, 0, parent


class TestComputeLevels:
    def test_path_levels(self):
        g, root, parent = good_tree()
        levels = compute_levels(g, root, parent)
        assert levels.tolist() == [0, 1, 2, 3, 4, 5]

    def test_unreached_gets_minus_one(self):
        g = path_graph(4)
        parent = np.array([0, 0, -1, -1], dtype=np.int64)
        levels = compute_levels(g, 0, parent)
        assert levels.tolist() == [0, 1, -1, -1]

    def test_root_not_self_parent(self):
        g, _, parent = good_tree()
        parent[0] = 1
        with pytest.raises(ValidationError):
            compute_levels(g, 0, parent)

    def test_cycle_detected(self):
        g = path_graph(4)
        parent = np.array([0, 2, 1, 2], dtype=np.int64)  # 1 <-> 2 cycle
        with pytest.raises(ValidationError):
            compute_levels(g, 0, parent)

    def test_wrong_shape(self):
        g = path_graph(4)
        with pytest.raises(ValidationError):
            compute_levels(g, 0, np.zeros(3, dtype=np.int64))


class TestValidateParentTree:
    def test_accepts_valid_tree(self):
        g, root, parent = good_tree()
        levels = validate_parent_tree(g, root, parent)
        assert levels[5] == 5

    def test_rejects_unreached_root(self):
        g, root, parent = good_tree()
        parent = np.full(6, -1, dtype=np.int64)
        with pytest.raises(ValidationError):
            validate_parent_tree(g, root, parent)

    def test_rejects_nonexistent_tree_edge(self):
        g, root, parent = good_tree()
        parent[5] = 2  # (2, 5) is not an edge of the path
        with pytest.raises(ValidationError):
            validate_parent_tree(g, root, parent)

    def test_rejects_unreached_parent(self):
        g = grid_graph(4, 4)
        parent = np.full(16, -1, dtype=np.int64)
        parent[0] = 0
        parent[1] = 0
        parent[2] = 1
        parent[5] = 4  # parent 4 unreached
        with pytest.raises(ValidationError):
            validate_parent_tree(g, 0, parent)

    def test_rejects_incomplete_component(self):
        """Check 5: an edge from reached to unreached vertex means the
        traversal stopped early."""
        g, root, parent = good_tree()
        parent[5] = -1  # vertex 5 reachable but unreached
        with pytest.raises(ValidationError):
            validate_parent_tree(g, root, parent)

    def test_rejects_level_skip(self):
        """A 'parent' two levels up breaks the level-difference rule."""
        g = grid_graph(1, 5)  # path 0-1-2-3-4
        parent = np.array([0, 0, 1, 2, 2], dtype=np.int64)  # (2,4) not edge
        with pytest.raises(ValidationError):
            validate_parent_tree(g, 0, parent)

    def test_rejects_out_of_range_parent(self):
        g, root, parent = good_tree()
        parent[3] = 17
        with pytest.raises(ValidationError):
            validate_parent_tree(g, root, parent)

    def test_accepts_engine_output_on_rmat(self):
        g = rmat_graph(scale=11, seed=12)
        cluster = paper_cluster(nodes=1)
        cfg = BFSConfig(ppn=1, binding=BindingPolicy.INTERLEAVE)
        root = int(np.argmax(g.degrees()))
        res = BFSEngine(g, cluster, cfg).run(root)
        validate_parent_tree(g, root, res.parent)

    def test_detects_corrupted_engine_output(self):
        g = rmat_graph(scale=11, seed=12)
        cluster = paper_cluster(nodes=1)
        cfg = BFSConfig(ppn=1, binding=BindingPolicy.INTERLEAVE)
        root = int(np.argmax(g.degrees()))
        res = BFSEngine(g, cluster, cfg).run(root)
        parent = res.parent.copy()
        reached = np.flatnonzero(parent >= 0)
        victim = int(reached[reached != root][0])
        parent[victim] = victim  # fake a second root
        with pytest.raises(ValidationError):
            validate_parent_tree(g, root, parent)
