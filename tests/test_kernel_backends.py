"""Backend-equivalence suite for the pluggable BFS kernels.

Every kernel backend must reproduce the paper's accounting
bit-identically — parents, discovery order, ``examined_edges`` and
``inqueue_reads`` (Section II.B.2) — because the cost model and Fig. 16
consume those counts.  These tests pin that invariant on randomized
R-MAT graphs and on the adversarial shapes the chunked scan is most
likely to get wrong: isolated vertices, an empty frontier, a single
giant-degree hub, and pathological chunk widths.
"""

import numpy as np
import pytest

from repro.core import BFSConfig, BFSEngine, Bitmap, CommConfig, SummaryBitmap, bottomup
from repro.core.kernels import (
    ActiveSetBackend,
    CNativeBackend,
    ReferenceBackend,
    available_backends,
    default_backend,
    get_backend,
    resolve_backend,
)
from repro.core.kernels.base import _dedup_dense, _dedup_sorted, dedup_first_parent
from repro.core.state import RankState
from repro.errors import ConfigError
from repro.graph import (
    Partition1D,
    from_edge_arrays,
    path_graph,
    rmat_graph,
    star_graph,
)
from repro.machine import paper_cluster

# The backends under test: the oracle, the default active-set kernel,
# and active-set variants with adversarial chunk widths (1 forces one
# edge per candidate per round; 3 exercises ragged chunk tails; a huge
# width degenerates to full materialization in one round).  The native
# compiled backend joins whenever this machine can build it; without a
# toolchain it is exercised through the fallback tests instead
# (tests/test_cnative.py).
BACKENDS = {
    "reference": ReferenceBackend(),
    "activeset": ActiveSetBackend(),
    "activeset.chunk=1": ActiveSetBackend(chunk=1),
    "activeset.chunk=3": ActiveSetBackend(chunk=3),
    "activeset.chunk=big": ActiveSetBackend(chunk=1 << 20),
}
CNATIVE_AVAILABLE = CNativeBackend.availability()[0]
if CNATIVE_AVAILABLE:
    BACKENDS["cnative"] = CNativeBackend()

VARIANTS = sorted(k for k in BACKENDS if k != "reference")


def scan_outcome(graph, backend, visited, frontier, granularity):
    """Run one bottom-up scan from a reproducible state; return all
    accounting plus the post-scan parent array."""
    part = Partition1D(graph.num_vertices, 1)
    state = RankState(part.extract_local(graph, 0))
    visited = np.asarray(visited, dtype=np.int64)
    if visited.size:
        state.discover(visited, visited)  # parent=self is fine for setup
    in_queue = Bitmap.from_indices(graph.num_vertices, frontier)
    summary = (
        SummaryBitmap.build(in_queue, granularity) if granularity else None
    )
    out = backend.bottom_up_scan(state, in_queue, summary)
    return {
        "new_local": out.new_local.tolist(),
        "candidates": out.candidates,
        "examined_edges": out.examined_edges,
        "inqueue_reads": out.inqueue_reads,
        "parent": state.parent.tolist(),
        # The hybrid policy's m_u must stay in sync no matter how a
        # backend applies discoveries (cnative updates state in C).
        "unexplored_degree": state.unexplored_degree,
    }


def assert_all_backends_agree(graph, visited, frontier, granularity):
    """The heart of the suite: identical outcome under every backend."""
    expected = scan_outcome(
        graph, BACKENDS["reference"], visited, frontier, granularity
    )
    for name in VARIANTS:
        got = scan_outcome(graph, BACKENDS[name], visited, frontier, granularity)
        assert got == expected, (
            f"{name} diverged from reference (granularity={granularity})"
        )


GRANULARITIES = [None, 64, 256]


class TestScanEquivalence:
    @pytest.mark.parametrize("granularity", GRANULARITIES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rmat_random_levels(self, seed, granularity):
        graph = rmat_graph(scale=9, edgefactor=8, seed=seed)
        rng = np.random.default_rng(100 + seed)
        n = graph.num_vertices
        # A synthetic mid-BFS state: ~35% visited, frontier = a random
        # half of the visited set (a superset relation is not required
        # by the kernels).
        visited = rng.choice(n, size=n // 3, replace=False)
        frontier = rng.choice(visited, size=visited.size // 2, replace=False)
        assert_all_backends_agree(graph, visited, frontier, granularity)

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_empty_frontier(self, granularity):
        graph = rmat_graph(scale=8, edgefactor=8, seed=5)
        # No frontier bits at all: every candidate scans its full degree.
        assert_all_backends_agree(
            graph, np.array([0]), np.array([], dtype=np.int64), granularity
        )

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_single_giant_degree_hub(self, granularity):
        # One hub adjacent to everything; the hub is the sole unvisited
        # candidate, so one candidate drives many doubling rounds.
        graph = star_graph(4000)
        leaves = np.arange(1, 4000)
        frontier = np.array([3990])  # deep in the hub's adjacency
        assert_all_backends_agree(graph, leaves, frontier, granularity)

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_hub_with_no_hit(self, granularity):
        graph = star_graph(2048)
        # Frontier contains only the (visited) hub itself: every leaf
        # candidate hits on its single edge; the hub is visited.
        assert_all_backends_agree(
            graph, np.array([0]), np.array([0]), granularity
        )

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_isolated_vertices(self, granularity):
        # Vertices 3..9 isolated: candidates must skip them entirely.
        graph = from_edge_arrays(10, [0, 1, 0], [1, 2, 2])
        assert_all_backends_agree(
            graph, np.array([0]), np.array([0]), granularity
        )

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_no_candidates(self, granularity):
        graph = path_graph(8)
        assert_all_backends_agree(
            graph, np.arange(8), np.array([4]), granularity
        )

    def test_activeset_gathers_fewer_edges_than_reference(self):
        # The backend's raison d'être: on a dense-frontier level it must
        # materialize far less adjacency than the full candidate degree.
        graph = rmat_graph(scale=10, edgefactor=16, seed=7)
        rng = np.random.default_rng(8)
        n = graph.num_vertices
        visited = rng.choice(n, size=n // 2, replace=False)
        frontier = visited

        def gathered(backend):
            part = Partition1D(n, 1)
            state = RankState(part.extract_local(graph, 0))
            state.discover(visited, visited)
            inq = Bitmap.from_indices(n, frontier)
            return backend.bottom_up_scan(state, inq, None)

        ref = gathered(BACKENDS["reference"])
        act = gathered(BACKENDS["activeset"])
        assert ref.gathered_edges > 0
        assert act.gathered_edges < ref.gathered_edges / 4
        assert act.examined_edges == ref.examined_edges


class TestEngineEquivalence:
    """Whole-run equivalence: parents, per-level counts, priced time."""

    @pytest.mark.parametrize("config_kwargs", [
        {},
        {"comm": CommConfig(summary_granularity=256)},
        {"comm": CommConfig(use_summary=False)},
        {"kernel_chunk": 5},
        {"degree_balanced": True},
    ])
    def test_full_run_bit_identical(self, config_kwargs):
        graph = rmat_graph(scale=11, edgefactor=8, seed=3)
        cluster = paper_cluster(nodes=2)
        root = int(np.argmax(graph.degrees()))
        kernels = ["reference", "activeset"]
        if CNATIVE_AVAILABLE:
            kernels.append("cnative")
        results = {}
        for kernel in kernels:
            cfg = BFSConfig(kernel=kernel, **config_kwargs)
            results[kernel] = BFSEngine(graph, cluster, cfg).run(root)
        a = results["reference"]
        for kernel in kernels[1:]:
            b = results[kernel]
            assert np.array_equal(a.parent, b.parent), kernel
            assert a.levels == b.levels, kernel
            for la, lb in zip(a.counts.levels, b.counts.levels):
                assert la.direction == lb.direction, kernel
                assert np.array_equal(la.candidates, lb.candidates), kernel
                assert np.array_equal(la.examined_edges, lb.examined_edges), kernel
                assert np.array_equal(la.inqueue_reads, lb.inqueue_reads), kernel
                assert np.array_equal(la.discovered, lb.discovered), kernel
            # Identical counts must price identically: the backend can
            # never change a simulated (paper) result.
            assert a.seconds == b.seconds, kernel
            assert a.teps == b.teps, kernel


class TestTopDownDedup:
    """The two dedup paths (argsort vs. linear scatter) are equivalent."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_paths_agree_on_random_pairs(self, seed):
        rng = np.random.default_rng(seed)
        n = 500
        size = int(rng.integers(1, 4000))
        children = rng.integers(0, n, size=size)
        parents = rng.integers(0, n, size=size)
        a = _dedup_sorted(children, parents)
        b = _dedup_dense(children, parents, n)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_first_occurrence_parent_wins(self):
        children = np.array([7, 3, 7, 3, 9])
        parents = np.array([1, 2, 3, 4, 5])
        for kids, folks in (
            _dedup_sorted(children, parents),
            _dedup_dense(children, parents, 10),
            dedup_first_parent(children, parents, 10),
        ):
            assert kids.tolist() == [3, 7, 9]
            assert folks.tolist() == [2, 1, 5]

    def test_dispatch_empty(self):
        c = np.zeros(0, dtype=np.int64)
        kids, folks = dedup_first_parent(c, c, 100)
        assert kids.size == 0 and folks.size == 0


class TestRegistryAndResolution:
    def test_available_backends(self):
        names = available_backends()
        assert "reference" in names and "activeset" in names
        # cnative is always *registered*, even when it cannot build here.
        assert "cnative" in names

    def test_available_backends_detail(self):
        detail = available_backends(detail=True)
        assert set(detail) == set(available_backends())
        assert detail["reference"] == (True, None)
        assert detail["activeset"] == (True, None)
        ok, reason = detail["cnative"]
        assert ok is CNATIVE_AVAILABLE
        assert (reason is None) if ok else isinstance(reason, str)

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            get_backend("warp-drive")

    def test_engine_rejects_unknown_kernel(self):
        graph = path_graph(256)
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            BFSEngine(graph, paper_cluster(nodes=1), BFSConfig(kernel="nope"))

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "reference")
        assert default_backend().name == "reference"
        assert resolve_backend(None).name == "reference"
        monkeypatch.delenv("REPRO_KERNEL")
        assert default_backend().name == "activeset"

    def test_config_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "reference")
        backend = resolve_backend(BFSConfig(kernel="activeset"))
        assert backend.name == "activeset"

    def test_kernel_chunk_flows_from_config(self):
        backend = resolve_backend(BFSConfig(kernel="activeset", kernel_chunk=7))
        assert isinstance(backend, ActiveSetBackend)
        assert backend.chunk == 7

    def test_config_validates_chunk(self):
        with pytest.raises(ConfigError, match="kernel_chunk"):
            BFSConfig(kernel_chunk=0)

    def test_backend_rejects_bad_chunk(self):
        with pytest.raises(ConfigError, match="chunk"):
            ActiveSetBackend(chunk=0)

    def test_scan_wrapper_uses_process_default(self, monkeypatch):
        graph = path_graph(6)
        part = Partition1D(6, 1)
        state = RankState(part.extract_local(graph, 0))
        state.discover(np.array([2]), np.array([2]))
        monkeypatch.setenv("REPRO_KERNEL", "reference")
        out = bottomup.scan(state, Bitmap.from_indices(6, np.array([2])), None)
        assert out.chunk_rounds == 1  # reference: one full pass
        assert sorted(out.new_local.tolist()) == [1, 3]
