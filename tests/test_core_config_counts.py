"""Tests for BFSConfig presets/validation, count scaling and the timing
assembler."""

import numpy as np
import pytest

from repro.core import (
    BFSConfig,
    BFSEngine,
    CommConfig,
    RunCounts,
    StructureSizes,
    assemble,
    paper_variants,
)
from repro.core.counts import LevelCounts
from repro.errors import ConfigError, SimulationError
from repro.graph import rmat_graph
from repro.machine import Placement, paper_cluster
from repro.mpi import AllgatherAlgorithm, BindingPolicy, ProcessMapping, SimComm


class TestBFSConfig:
    def test_paper_variant_chain(self):
        variants = paper_variants()
        assert list(variants) == [
            "Original.ppn=1",
            "Original.ppn=8",
            "Share in_queue",
            "Share all",
            "Par allgather",
            "Granularity",
        ]
        assert variants["Original.ppn=1"].ppn == 1
        assert variants["Share in_queue"].shares_in_queue
        assert not variants["Share in_queue"].share_all
        assert variants["Par allgather"].parallel_allgather
        assert variants["Granularity"].granularity == 256

    def test_algorithm_selection(self):
        v = paper_variants()
        assert (
            v["Original.ppn=8"].in_queue_algorithm()
            is AllgatherAlgorithm.DEFAULT
        )
        assert (
            v["Share in_queue"].in_queue_algorithm()
            is AllgatherAlgorithm.SHARED_IN
        )
        assert (
            v["Share all"].in_queue_algorithm()
            is AllgatherAlgorithm.SHARED_ALL
        )
        assert (
            v["Par allgather"].in_queue_algorithm()
            is AllgatherAlgorithm.PARALLEL_SHARED
        )
        # Only 'Share all' shares the summary; parallelization is in_queue-only.
        assert (
            v["Par allgather"].summary_algorithm()
            is AllgatherAlgorithm.SHARED_ALL
        )
        assert (
            v["Share in_queue"].summary_algorithm()
            is AllgatherAlgorithm.DEFAULT
        )

    def test_placement_overrides(self):
        cfg = BFSConfig.share_in_queue_variant()
        assert (
            cfg.in_queue_placement(Placement.LOCAL_SOCKET)
            is Placement.NODE_SHARED
        )
        assert (
            cfg.summary_placement(Placement.LOCAL_SOCKET)
            is Placement.LOCAL_SOCKET
        )
        cfg_all = BFSConfig.share_all_variant()
        assert (
            cfg_all.summary_placement(Placement.LOCAL_SOCKET)
            is Placement.NODE_SHARED
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            CommConfig(summary_granularity=100)
        with pytest.raises(ConfigError):
            BFSConfig(alpha=0)
        with pytest.raises(ConfigError):
            CommConfig(parallel_allgather=True)  # needs Share all
        with pytest.raises(ConfigError):
            CommConfig(codec="no-such-codec")
        with pytest.raises(ConfigError):
            BFSConfig(ppn=0)

    def test_resolve_ppn(self):
        cluster = paper_cluster(nodes=1)
        assert BFSConfig().resolve_ppn(cluster) == 8
        assert BFSConfig(ppn=1).resolve_ppn(cluster) == 1

    def test_named(self):
        cfg = BFSConfig().named("x")
        assert cfg.label == "x"


def run_counts():
    g = rmat_graph(scale=11, seed=4)
    cluster = paper_cluster(nodes=2)
    cfg = BFSConfig.original_ppn8()
    engine = BFSEngine(g, cluster, cfg)
    res = engine.run(int(np.argmax(g.degrees())))
    return g, cluster, cfg, engine, res


class TestCountScaling:
    def test_scaled_counts_linear_in_totals(self):
        """Totals scale linearly; per-rank deviations shrink by 1/sqrt
        (the load-imbalance law), so entries are not simply multiplied."""
        _, _, _, _, res = run_counts()
        scaled = res.counts.scaled(8.0)
        assert scaled.num_vertices == res.counts.num_vertices * 8
        assert scaled.traversed_edges == res.counts.traversed_edges * 8
        for a, b in zip(res.counts.levels, scaled.levels):
            assert b.examined_edges.sum() == pytest.approx(
                8 * a.examined_edges.sum(), rel=0.01, abs=8
            )
            assert b.inq_part_words == a.inq_part_words * 8
            # Relative imbalance must not grow.
            if a.examined_edges.sum() > 100:
                rel_a = a.examined_edges.std() / max(1, a.examined_edges.mean())
                rel_b = b.examined_edges.std() / max(1, b.examined_edges.mean())
                assert rel_b <= rel_a + 1e-9

    def test_scaled_preserves_structure(self):
        _, _, _, _, res = run_counts()
        scaled = res.counts.scaled(2.0)
        assert [l.direction for l in scaled.levels] == [
            l.direction for l in res.counts.levels
        ]
        scaled.validate()

    def test_scale_factor_validation(self):
        _, _, _, _, res = run_counts()
        with pytest.raises(SimulationError):
            res.counts.levels[0].scaled(0)

    def test_validate_catches_bad_shapes(self):
        rc = RunCounts(num_vertices=64, num_ranks=4)
        lc = LevelCounts(level=0, direction="top_down")
        lc.frontier_local = np.zeros(3, dtype=np.int64)  # wrong shape
        rc.levels.append(lc)
        with pytest.raises(SimulationError):
            rc.validate()


class TestTimingAssembler:
    def test_scaling_counts_raises_comm_time(self):
        """Pricing the same run at a paper-like scale (2^17 x) must move
        the allgathers from the latency regime into the bandwidth regime
        and multiply the communication cost."""
        g, cluster, cfg, engine, res = run_counts()
        base = res.timing.breakdown
        factor = 2.0**17
        scaled_counts = res.counts.scaled(factor)
        sizes = StructureSizes(
            num_vertices=scaled_counts.num_vertices,
            num_arcs=int(g.num_directed_edges * factor),
            num_ranks=scaled_counts.num_ranks,
            granularity=cfg.granularity,
        )
        scaled_timing = assemble(scaled_counts, engine.comm, cfg, sizes)
        assert scaled_timing.breakdown.bu_comm > 10 * base.bu_comm
        assert scaled_timing.breakdown.bu_compute > 10 * base.bu_compute

    def test_rank_count_mismatch_rejected(self):
        g, cluster, cfg, engine, res = run_counts()
        other_mapping = ProcessMapping(cluster, ppn=1, policy=BindingPolicy.INTERLEAVE)
        other_comm = SimComm(cluster, other_mapping)
        with pytest.raises(SimulationError):
            assemble(res.counts, other_comm, cfg, engine.sizes)

    def test_breakdown_total_is_sum_of_phases(self):
        _, _, _, _, res = run_counts()
        bd = res.timing.breakdown
        assert bd.total == pytest.approx(sum(bd.as_dict().values()))
        assert 0 <= bd.comm_fraction <= 1

    def test_shared_in_queue_cheaper_comm_than_default(self):
        """The core claim: sharing in_queue cuts the bottom-up
        communication cost."""
        g = rmat_graph(scale=12, seed=4)
        cluster = paper_cluster(nodes=4)
        root = int(np.argmax(g.degrees()))
        t = {}
        for cfg in (
            BFSConfig.original_ppn8(),
            BFSConfig.share_in_queue_variant(),
        ):
            res = BFSEngine(g, cluster, cfg).run(root)
            t[cfg.label] = res.timing.breakdown.bu_comm
        assert t["Share in_queue"] < t["Original.ppn=8"]
