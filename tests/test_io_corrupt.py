"""Graph archive robustness: truncated/corrupt files raise GraphError.

A damaged ``.npz`` must never surface as a numpy/zipfile traceback or —
worse — a silently wrong graph: every failure mode maps to a
:class:`~repro.errors.GraphError` carrying the file, the damaged member
and its byte offset.
"""

import json

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.io import (
    load_edge_list,
    load_graph,
    save_edge_list,
    save_graph,
)
from repro.graph.rmat import rmat_graph
from repro.graph.types import EdgeList


@pytest.fixture()
def graph_file(tmp_path):
    graph = rmat_graph(10, seed=1)
    path = tmp_path / "graph.npz"
    save_graph(path, graph)
    return path, graph


def test_round_trip_still_works(graph_file):
    path, graph = graph_file
    loaded = load_graph(path)
    assert loaded.num_vertices == graph.num_vertices
    assert np.array_equal(loaded.offsets, graph.offsets)
    assert np.array_equal(loaded.targets, graph.targets)


def test_truncated_archive(graph_file):
    path, _ = graph_file
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(GraphError) as ei:
        load_graph(path)
    exc = ei.value
    assert "truncated" in str(exc) or "not a readable" in str(exc)
    assert exc.context["file_bytes"] == len(raw) // 2
    json.dumps(exc.to_dict())


def test_corrupt_member_reports_byte_offset(graph_file):
    path, _ = graph_file
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF  # flip a byte mid-archive, keep the size
    path.write_bytes(bytes(raw))
    with pytest.raises(GraphError) as ei:
        load_graph(path)
    ctx = ei.value.context
    assert "member" in ctx
    assert ctx.get("byte_offset", -1) >= 0


def test_missing_file_keeps_oserror(tmp_path):
    # a missing file is not a damaged one: the usual error passes through
    with pytest.raises(FileNotFoundError):
        load_edge_list(tmp_path / "missing.npz")


def test_not_a_zip(tmp_path):
    path = tmp_path / "junk.npz"
    path.write_bytes(b"\x00" * 100)
    with pytest.raises(GraphError) as ei:
        load_graph(path)
    assert ei.value.context["file_bytes"] == 100


def test_wrong_kind(tmp_path):
    path = tmp_path / "edges.npz"
    save_edge_list(
        path,
        EdgeList(
            num_vertices=64,
            sources=np.array([0, 1], dtype=np.int64),
            targets=np.array([1, 2], dtype=np.int64),
        ),
    )
    with pytest.raises(GraphError):
        load_graph(path)


def test_missing_member(tmp_path):
    path = tmp_path / "partial.npz"
    np.savez_compressed(
        path,
        kind=np.bytes_(b"csr_graph"),
        num_vertices=np.int64(64),
        offsets=np.zeros(65, dtype=np.int64),
        # no 'targets', no 'meta'
    )
    with pytest.raises(GraphError) as ei:
        load_graph(path)
    assert ei.value.context["member"] in ("targets", "meta")


def test_inconsistent_csr_offsets(tmp_path):
    path = tmp_path / "bad_offsets.npz"
    offsets = np.zeros(65, dtype=np.int64)
    offsets[-1] = 99  # claims 99 adjacency entries; array below has 4
    np.savez_compressed(
        path,
        kind=np.bytes_(b"csr_graph"),
        num_vertices=np.int64(64),
        offsets=offsets,
        targets=np.array([1, 2, 3, 4], dtype=np.int64),
        meta=np.bytes_(b"{}"),
    )
    with pytest.raises(GraphError) as ei:
        load_graph(path)
    assert "adjacency" in str(ei.value)


def test_non_monotonic_csr_offsets(tmp_path):
    path = tmp_path / "decreasing.npz"
    offsets = np.zeros(65, dtype=np.int64)
    offsets[1] = 3
    offsets[2] = 1  # decreases
    offsets[-1] = 4
    np.savez_compressed(
        path,
        kind=np.bytes_(b"csr_graph"),
        num_vertices=np.int64(64),
        offsets=offsets,
        targets=np.array([1, 2, 3, 4], dtype=np.int64),
        meta=np.bytes_(b"{}"),
    )
    with pytest.raises(GraphError) as ei:
        load_graph(path)
    assert "decrease" in str(ei.value)


def test_corrupt_meta_json(tmp_path):
    path = tmp_path / "bad_meta.npz"
    np.savez_compressed(
        path,
        kind=np.bytes_(b"csr_graph"),
        num_vertices=np.int64(64),
        offsets=np.zeros(65, dtype=np.int64),
        targets=np.zeros(0, dtype=np.int64),
        meta=np.bytes_(b"{not json"),
    )
    with pytest.raises(GraphError) as ei:
        load_graph(path)
    assert ei.value.context["member"] == "meta"


def test_edge_list_shape_mismatch(tmp_path):
    path = tmp_path / "ragged.npz"
    np.savez_compressed(
        path,
        kind=np.bytes_(b"edge_list"),
        num_vertices=np.int64(64),
        sources=np.array([0, 1, 2], dtype=np.int64),
        targets=np.array([1, 2], dtype=np.int64),
    )
    with pytest.raises(GraphError) as ei:
        load_edge_list(path)
    assert "equal-length" in str(ei.value)
