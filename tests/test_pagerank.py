"""Tests for distributed PageRank (the paper's migration claim)."""

import networkx as nx
import numpy as np
import pytest

from repro.analysis.pagerank import distributed_pagerank
from repro.core import BFSConfig
from repro.errors import ConfigError, GraphError
from repro.graph import from_edge_arrays, path_graph, rmat_graph, star_graph
from repro.machine import paper_cluster


def to_networkx(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    for v in range(graph.num_vertices):
        for u in graph.neighbors(v):
            g.add_edge(v, int(u))
    return g


@pytest.fixture(scope="module")
def cluster():
    return paper_cluster(nodes=2)


class TestCorrectness:
    def test_matches_networkx_on_rmat(self, cluster):
        g = rmat_graph(scale=11, seed=5)
        res = distributed_pagerank(g, cluster, tol=1e-10)
        ref = nx.pagerank(to_networkx(g), alpha=0.85, tol=1e-12, max_iter=300)
        ref_arr = np.array([ref[i] for i in range(g.num_vertices)])
        assert res.converged
        assert np.abs(res.ranks - ref_arr).max() < 1e-6

    def test_ranks_sum_to_one(self, cluster):
        g = rmat_graph(scale=10, seed=3)
        res = distributed_pagerank(g, cluster)
        assert res.ranks.sum() == pytest.approx(1.0)
        assert np.all(res.ranks > 0)

    def test_hub_ranks_highest(self, cluster):
        g = star_graph(1024)
        res = distributed_pagerank(g, cluster)
        assert int(np.argmax(res.ranks)) == 0

    def test_symmetric_graph_uniform(self, cluster):
        """On a vertex-transitive graph every vertex has equal rank."""
        from repro.graph import cycle_graph

        g = cycle_graph(1024)
        res = distributed_pagerank(g, cluster, tol=1e-12)
        assert np.allclose(res.ranks, 1.0 / 1024)

    def test_partition_invariance(self, cluster):
        """The distributed result must not depend on the rank count."""
        g = rmat_graph(scale=11, seed=7)
        one = distributed_pagerank(
            g, paper_cluster(nodes=1), BFSConfig(ppn=1, binding=_interleave())
        )
        many = distributed_pagerank(g, paper_cluster(nodes=4))
        assert np.allclose(one.ranks, many.ranks, atol=1e-12)

    def test_dangling_mass_redistributed(self, cluster):
        # Vertex 2.. are isolated: their rank mass must not vanish.
        g = from_edge_arrays(1024, [0], [1])
        res = distributed_pagerank(g, cluster, tol=1e-12)
        assert res.ranks.sum() == pytest.approx(1.0)
        assert res.ranks[5] > 0


class TestCostModel:
    def test_migration_claim(self, cluster):
        """The paper's conclusion: the sharing/parallel optimizations cut
        the allgather cost of *other* allgather-dominated applications."""
        g = rmat_graph(scale=11, seed=5)
        base = distributed_pagerank(g, cluster, BFSConfig.original_ppn8())
        opt = distributed_pagerank(
            g, cluster, BFSConfig.par_allgather_variant()
        )
        assert opt.per_iteration_comm_ns < base.per_iteration_comm_ns
        assert np.allclose(base.ranks, opt.ranks)  # purely a comm change

    def test_costs_positive(self, cluster):
        g = rmat_graph(scale=10, seed=2)
        res = distributed_pagerank(g, cluster)
        assert res.compute_seconds > 0
        assert res.comm_seconds > 0
        assert 0 < res.comm_fraction < 1
        assert res.seconds == pytest.approx(
            res.compute_seconds + res.comm_seconds
        )


class TestValidation:
    def test_bad_damping(self, cluster):
        g = path_graph(1024)
        with pytest.raises(ConfigError):
            distributed_pagerank(g, cluster, damping=1.0)
        with pytest.raises(ConfigError):
            distributed_pagerank(g, cluster, damping=0.0)

    def test_bad_max_iter(self, cluster):
        with pytest.raises(ConfigError):
            distributed_pagerank(path_graph(1024), cluster, max_iter=0)

    def test_unaligned_graph(self, cluster):
        with pytest.raises(ConfigError):
            distributed_pagerank(path_graph(100), cluster)

    def test_non_convergence_reported(self, cluster):
        g = rmat_graph(scale=10, seed=2)
        res = distributed_pagerank(g, cluster, tol=0.0, max_iter=2)
        assert not res.converged
        assert res.iterations == 2


def _interleave():
    from repro.mpi import BindingPolicy

    return BindingPolicy.INTERLEAVE
