"""PreparedGraph / PreparedGraphCache: sharing, keys, and reuse."""

import numpy as np
import pytest

from repro.core.api import compare_configs, run_bfs
from repro.core.config import BFSConfig, CommConfig, paper_variants
from repro.core.engine import BFSEngine
from repro.core.prepared import (
    PreparedGraph,
    PreparedGraphCache,
    default_prepared_cache,
    graph_digest,
    reset_default_prepared_cache,
)
from repro.errors import ConfigError
from repro.graph.rmat import rmat_graph
from repro.machine.spec import paper_cluster


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=10, edgefactor=8, seed=3)


@pytest.fixture(scope="module")
def cluster():
    return paper_cluster(nodes=1)


class TestDigest:
    def test_digest_is_stable_and_memoized(self, graph):
        d1 = graph_digest(graph)
        assert d1 == graph_digest(graph)
        assert graph.meta["content_digest"] == d1

    def test_digest_distinguishes_graphs(self, graph):
        other = rmat_graph(scale=10, edgefactor=8, seed=4)
        assert graph_digest(other) != graph_digest(graph)


class TestPreparedGraph:
    def test_prepare_matches_engine_internals(self, graph, cluster):
        config = BFSConfig.original_ppn8()
        prepared = PreparedGraph.prepare(graph, cluster, config)
        engine = BFSEngine(graph, cluster, config, prepared=prepared)
        assert engine.prepared is prepared
        assert engine.partition is prepared.partition
        fresh = BFSEngine(graph, cluster, config)
        assert np.array_equal(
            fresh.partition.bounds, prepared.partition.bounds
        )

    def test_engine_result_unchanged_with_prepared(self, graph, cluster):
        config = BFSConfig.original_ppn8()
        prepared = PreparedGraph.prepare(graph, cluster, config)
        root = int(np.argmax(graph.degrees()))
        with_prep = BFSEngine(
            graph, cluster, config, prepared=prepared
        ).run(root)
        without = BFSEngine(graph, cluster, config).run(root)
        assert np.array_equal(with_prep.parent, without.parent)
        assert with_prep.seconds == without.seconds

    def test_check_rejects_other_graph(self, graph, cluster):
        config = BFSConfig.original_ppn8()
        prepared = PreparedGraph.prepare(graph, cluster, config)
        other = rmat_graph(scale=10, edgefactor=8, seed=4)
        with pytest.raises(ConfigError, match="different graph"):
            prepared.check(other, cluster, config)

    def test_check_rejects_other_partition_config(self, graph, cluster):
        config = BFSConfig.original_ppn8()
        prepared = PreparedGraph.prepare(graph, cluster, config)
        with pytest.raises(ConfigError, match="partition"):
            prepared.check(
                graph,
                cluster,
                BFSConfig(ppn=config.resolve_ppn(cluster), degree_balanced=True),
            )

    def test_per_query_knobs_do_not_invalidate(self, graph, cluster):
        config = BFSConfig.original_ppn8()
        prepared = PreparedGraph.prepare(graph, cluster, config)
        variant = BFSConfig(
            ppn=config.ppn,
            binding=config.binding,
            comm=CommConfig.shared_all(codec="sieve"),
            kernel="activeset",
        )
        prepared.check(graph, cluster, variant)  # must not raise


class TestCache:
    def test_hit_on_same_partition_axes(self, graph, cluster):
        cache = PreparedGraphCache(maxsize=4)
        a = cache.get_or_prepare(graph, cluster, BFSConfig.original_ppn8())
        b = cache.get_or_prepare(
            graph,
            cluster,
            BFSConfig(comm=CommConfig(codec="rle-bitmap")),
        )
        assert a is b  # codec is per-query, not a partition axis
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        assert stats["hit_rate"] == 0.5

    def test_distinct_axes_miss(self, graph, cluster):
        cache = PreparedGraphCache(maxsize=4)
        a = cache.get_or_prepare(graph, cluster, BFSConfig())
        b = cache.get_or_prepare(
            graph, cluster, BFSConfig(degree_balanced=True)
        )
        assert a is not b
        assert cache.stats()["misses"] == 2

    def test_lru_eviction(self, graph, cluster):
        cache = PreparedGraphCache(maxsize=1)
        first = cache.get_or_prepare(graph, cluster, BFSConfig())
        cache.get_or_prepare(graph, cluster, BFSConfig(degree_balanced=True))
        assert len(cache) == 1
        again = cache.get_or_prepare(graph, cluster, BFSConfig())
        assert again is not first  # was evicted, rebuilt
        assert cache.stats()["hits"] == 0

    def test_invalid_maxsize(self):
        with pytest.raises(ConfigError):
            PreparedGraphCache(maxsize=0)

    def test_default_cache_reset(self):
        first = default_prepared_cache()
        assert default_prepared_cache() is first
        fresh = reset_default_prepared_cache()
        assert fresh is not first
        assert default_prepared_cache() is fresh


class TestSharedAcrossComparisons:
    """compare_configs routes variants through one prepared graph per
    layout — and TEPS stay identical to unshared runs."""

    def test_compare_configs_teps_identical_to_fresh_runs(
        self, graph, cluster
    ):
        configs = paper_variants(256)
        root = int(np.argmax(graph.degrees()))
        comparison = compare_configs(
            graph, configs, cluster=cluster, root=root
        )
        for name, config in configs.items():
            fresh = run_bfs(graph, root, cluster=cluster, config=config)
            assert comparison.teps[name] == fresh.teps, name
            assert comparison.seconds[name] == fresh.seconds, name
