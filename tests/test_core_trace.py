"""Tests for the per-level trace export."""

import csv
import io
import json

import numpy as np
import pytest

from repro.core import BFSConfig, BFSEngine
from repro.core.trace import to_csv, to_json, trace_rows
from repro.graph import rmat_graph
from repro.machine import paper_cluster


@pytest.fixture(scope="module")
def result():
    g = rmat_graph(scale=11, seed=6)
    engine = BFSEngine(g, paper_cluster(nodes=2), BFSConfig.original_ppn8())
    return engine.run(int(np.argmax(g.degrees())))


class TestTraceRows:
    def test_one_row_per_level(self, result):
        rows = trace_rows(result)
        assert len(rows) == result.levels
        assert [r.level for r in rows] == list(range(result.levels))

    def test_totals_consistent(self, result):
        rows = trace_rows(result)
        total = sum(r.total_ns for r in rows)
        assert total == pytest.approx(result.timing.total_ns, rel=1e-9)
        # The root is discovered at initialization, before level 0.
        assert sum(r.discovered for r in rows) == result.visited - 1

    def test_directions_match(self, result):
        rows = trace_rows(result)
        assert [r.direction for r in rows] == [
            lc.direction for lc in result.counts.levels
        ]


class TestCsv:
    def test_round_trip(self, result):
        text = to_csv(result)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == result.levels
        assert parsed[0]["direction"] == "top_down"
        assert int(parsed[0]["frontier"]) == 1  # the root

    def test_numeric_columns(self, result):
        parsed = list(csv.DictReader(io.StringIO(to_csv(result))))
        for row in parsed:
            assert float(row["comm_ns"]) >= 0
            assert int(row["examined_edges"]) >= 0


class TestJson:
    def test_document_shape(self, result):
        doc = json.loads(to_json(result))
        assert doc["root"] == result.root
        assert doc["visited"] == result.visited
        assert doc["teps"] == pytest.approx(result.teps)
        assert len(doc["per_level"]) == result.levels
        assert set(doc["breakdown"]) == {
            "td_compute",
            "td_comm",
            "bu_compute",
            "bu_comm",
            "switch",
            "stall",
        }


class TestGantt:
    def test_renders_one_row_per_level(self, result):
        from repro.core.trace import gantt

        text = gantt(result)
        lines = text.splitlines()
        assert len(lines) == result.levels + 1  # header + rows
        assert "TD" in text and "BU" in text

    def test_width_validation(self, result):
        from repro.core.trace import gantt

        import pytest as _pytest

        with _pytest.raises(ValueError):
            gantt(result, width=5)

    def test_segments_cover_phases(self, result):
        from repro.core.trace import gantt

        text = gantt(result, width=120)
        assert "#" in text or "=" in text


class TestBarSegments:
    """Regression: independent per-segment rounding could overflow the bar."""

    @staticmethod
    def _row(compute, comm, switch, stall):
        from repro.core.trace import LevelTraceRow

        return LevelTraceRow(
            level=0,
            direction="top_down",
            switched=False,
            frontier=1,
            candidates=0,
            examined_edges=0,
            inqueue_reads=0,
            discovered=0,
            compute_mean_ns=compute,
            compute_max_ns=compute,
            comm_ns=comm,
            switch_ns=switch,
            stall_ns=stall,
        )

    def test_two_halves_round_up(self):
        """compute=comm=50% of 3 cells: round(1.5) twice gave a 4-cell bar."""
        from repro.core.trace import _bar_segments

        segs = _bar_segments(self._row(5.0, 5.0, 0.0, 0.0), cells=3)
        assert sum(segs) == 3

    def test_segments_always_sum_to_cells(self):
        from repro.core.trace import _bar_segments

        rng = np.random.default_rng(7)
        for _ in range(200):
            parts = rng.uniform(0.0, 100.0, size=4)
            cells = int(rng.integers(1, 40))
            segs = _bar_segments(self._row(*parts), cells)
            assert sum(segs) == cells
            assert all(s >= 0 for s in segs)

    def test_zero_total_level(self):
        from repro.core.trace import _bar_segments

        comp, comm, sw, stall = _bar_segments(self._row(0.0, 0.0, 0.0, 0.0), 5)
        assert (comp, comm, sw) == (0, 0, 0)
        assert comp + comm + sw + stall == 5

    def test_gantt_bars_never_exceed_width(self, result):
        from repro.core.trace import gantt

        width = 40
        text = gantt(result, width=width)
        for line in text.splitlines()[1:]:
            bar = line.split("|", 1)[1]
            assert len(bar) <= width
