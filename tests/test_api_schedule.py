"""Tests for the high-level API facade and the schedule explainer."""

import numpy as np
import pytest

from repro.core.api import compare_configs, optimization_stack, run_bfs
from repro.core import BFSConfig
from repro.errors import CommunicationError, GraphError
from repro.graph import from_edge_arrays, rmat_graph
from repro.machine import paper_cluster
from repro.machine.spec import MB
from repro.mpi import AllgatherAlgorithm, ProcessMapping, SimComm
from repro.mpi.schedule import explain_allgather


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=12, seed=7)


class TestRunBfs:
    def test_defaults(self, graph):
        root = int(np.argmax(graph.degrees()))
        res = run_bfs(graph, root, validate=True)
        assert res.visited > 0
        assert res.teps > 0

    def test_custom_cluster_and_config(self, graph):
        root = int(np.argmax(graph.degrees()))
        res = run_bfs(
            graph,
            root,
            cluster=paper_cluster(nodes=2),
            config=BFSConfig.share_all_variant(),
        )
        assert res.visited > 0


class TestCompareConfigs:
    def test_paper_scale_comparison(self, graph):
        comp = compare_configs(
            graph,
            {
                "baseline": BFSConfig.original_ppn1(),
                "optimized": BFSConfig.par_allgather_variant(),
            },
            cluster=paper_cluster(nodes=8),
            target_scale=31,
        )
        assert comp.best == "optimized"
        assert comp.speedup("optimized", "baseline") > 1.0
        assert comp.target_scale == 31

    def test_empty_configs_rejected(self, graph):
        with pytest.raises(GraphError):
            compare_configs(graph, {})

    def test_edgeless_graph_rejected(self):
        g = from_edge_arrays(512, [], [])
        with pytest.raises(GraphError):
            compare_configs(g, {"x": BFSConfig.original_ppn8()})

    def test_explicit_root(self, graph):
        root = int(np.flatnonzero(graph.degrees() > 0)[0])
        comp = compare_configs(
            graph, {"a": BFSConfig.original_ppn8()}, root=root
        )
        assert "a" in comp.teps

    def test_optimization_stack_order(self, graph):
        comp = optimization_stack(
            graph, cluster=paper_cluster(nodes=8), target_scale=31
        )
        assert set(comp.teps) == {
            "Original.ppn=1",
            "Original.ppn=8",
            "Share in_queue",
            "Share all",
            "Par allgather",
            "Granularity",
        }
        assert comp.speedup("Par allgather", "Original.ppn=1") > 1.3


class TestScheduleExplainer:
    @pytest.fixture(scope="class")
    def comm(self):
        cluster = paper_cluster(nodes=8)
        return SimComm(cluster, ProcessMapping(cluster, ppn=8))

    def test_leader_has_three_steps(self, comm):
        part = 64 * MB / comm.num_ranks
        steps = explain_allgather(comm, AllgatherAlgorithm.LEADER, part)
        assert [s.name for s in steps] == [
            "step 1 gather", "step 2 inter", "step 3 bcast",
        ]
        assert all(s.time_ns > 0 for s in steps)

    def test_shared_in_eliminates_bcast(self, comm):
        part = 64 * MB / comm.num_ranks
        steps = explain_allgather(comm, AllgatherAlgorithm.SHARED_IN, part)
        by_name = {s.name: s for s in steps}
        assert by_name["step 3 bcast"].channel == "none"
        assert by_name["step 3 bcast"].time_ns == 0.0
        assert by_name["step 1 gather"].time_ns > 0

    def test_shared_all_eliminates_both(self, comm):
        part = 64 * MB / comm.num_ranks
        steps = explain_allgather(comm, AllgatherAlgorithm.SHARED_ALL, part)
        by_name = {s.name: s for s in steps}
        assert by_name["step 1 gather"].channel == "none"
        assert by_name["step 3 bcast"].channel == "none"

    def test_parallel_mentions_subgroups(self, comm):
        part = 64 * MB / comm.num_ranks
        steps = explain_allgather(
            comm, AllgatherAlgorithm.PARALLEL_SHARED, part
        )
        inter = next(s for s in steps if s.name == "step 2 inter")
        assert "subgroups" in inter.description

    def test_ring_and_recursive_doubling(self, comm):
        steps_ring = explain_allgather(
            comm, AllgatherAlgorithm.RING, 4 * MB
        )
        assert len(steps_ring) == 1 and steps_ring[0].name == "ring"
        steps_rd = explain_allgather(
            comm, AllgatherAlgorithm.RECURSIVE_DOUBLING, 128.0
        )
        assert steps_rd[0].name == "recursive-dbl"

    def test_multi_leader_volume_warning(self, comm):
        steps = explain_allgather(
            comm, AllgatherAlgorithm.MULTI_LEADER, 4 * MB
        )
        assert "FULL payload" in steps[0].description

    def test_times_sum_to_allgather_time(self, comm):
        from repro.mpi import allgather_time

        part = 64 * MB / comm.num_ranks
        for algo in (
            AllgatherAlgorithm.LEADER,
            AllgatherAlgorithm.SHARED_IN,
            AllgatherAlgorithm.SHARED_ALL,
            AllgatherAlgorithm.PARALLEL_SHARED,
        ):
            steps = explain_allgather(comm, algo, part)
            total, _ = allgather_time(comm, algo, part)
            assert sum(s.time_ns for s in steps) == pytest.approx(total)

    def test_render(self, comm):
        steps = explain_allgather(
            comm, AllgatherAlgorithm.LEADER, 64 * MB / comm.num_ranks
        )
        text = "\n".join(s.render() for s in steps)
        assert "intra-node" in text and "inter-node" in text

    def test_negative_part_rejected(self, comm):
        with pytest.raises(CommunicationError):
            explain_allgather(comm, AllgatherAlgorithm.LEADER, -1.0)
