"""Tests for the 2-D partitioned BFS extension (Buluc-Madduri)."""

import networkx as nx
import numpy as np
import pytest

from repro.core import BFSConfig, BFSEngine, TraversalMode
from repro.core.twod import Grid2D, TwoDBFSEngine
from repro.core.validate import validate_parent_tree
from repro.errors import ConfigError, GraphError
from repro.graph import grid_graph, rmat_graph
from repro.machine import paper_cluster


def reference_levels(graph, root):
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    for v in range(graph.num_vertices):
        for u in graph.neighbors(v):
            g.add_edge(v, int(u))
    dist = nx.single_source_shortest_path_length(g, root)
    out = np.full(graph.num_vertices, -1, dtype=np.int64)
    for v, d in dist.items():
        out[v] = d
    return out


class TestGrid2D:
    def test_coordinates(self):
        grid = Grid2D(2, 4)
        assert grid.size == 8
        assert grid.rank_of(1, 2) == 6
        assert grid.coords(6) == (1, 2)
        assert grid.column_ranks(2) == [2, 6]
        assert grid.row_ranks(1) == [4, 5, 6, 7]

    def test_validation(self):
        with pytest.raises(ConfigError):
            Grid2D(0, 4)
        grid = Grid2D(2, 2)
        with pytest.raises(ConfigError):
            grid.rank_of(2, 0)
        with pytest.raises(ConfigError):
            grid.coords(4)


class TestTwoDCorrectness:
    @pytest.mark.parametrize("shape", [(2, 1), (2, 2), (4, 4), (2, 8)])
    def test_matches_networkx_on_rmat(self, shape):
        g = rmat_graph(scale=12, seed=8)
        cluster = paper_cluster(nodes=2)
        engine = TwoDBFSEngine(g, cluster, Grid2D(*shape))
        root = int(np.argmax(g.degrees()))
        res = engine.run(root)
        levels = validate_parent_tree(g, root, res.parent)
        assert np.array_equal(levels, reference_levels(g, root))

    def test_grid_graph(self):
        g = grid_graph(32, 32)  # 1024 vertices
        cluster = paper_cluster(nodes=2)
        engine = TwoDBFSEngine(g, cluster, Grid2D(4, 4))
        res = engine.run(0)
        assert res.visited == 1024
        assert res.levels == 63

    def test_agrees_with_1d_engine(self):
        g = rmat_graph(scale=12, seed=4)
        cluster = paper_cluster(nodes=2)
        root = int(np.argmax(g.degrees()))
        res_2d = TwoDBFSEngine(g, cluster, Grid2D(4, 4)).run(root)
        res_1d = BFSEngine(g, cluster, BFSConfig.original_ppn8()).run(root)
        assert res_2d.visited == res_1d.visited
        assert res_2d.counts.traversed_edges == res_1d.counts.traversed_edges

    def test_validation_errors(self):
        g = rmat_graph(scale=12, seed=4)
        cluster = paper_cluster(nodes=2)
        with pytest.raises(ConfigError):
            TwoDBFSEngine(g, cluster, Grid2D(3, 1))  # 3 ranks on 2 nodes
        engine = TwoDBFSEngine(g, cluster, Grid2D(2, 2))
        with pytest.raises(GraphError):
            engine.run(g.num_vertices)

    def test_engine_reusable(self):
        g = rmat_graph(scale=12, seed=4)
        engine = TwoDBFSEngine(g, paper_cluster(nodes=2), Grid2D(2, 2))
        roots = np.flatnonzero(g.degrees() > 0)[:2]
        for root in roots:
            res = engine.run(int(root))
            validate_parent_tree(g, int(root), res.parent)


class TestTwoDCommunication:
    def test_sqrt_p_volume_advantage(self):
        """The SC'11 claim: with p ranks, 2-D moves asymptotically less
        frontier data than a 1-D pure top-down at the same rank count.

        We compare total bytes across the run: the 2-D grid confines each
        exchange to one row/column (sqrt(p) peers instead of p)."""
        g = rmat_graph(scale=13, seed=6)
        cluster = paper_cluster(nodes=2)
        root = int(np.argmax(g.degrees()))

        res_2d = TwoDBFSEngine(g, cluster, Grid2D(4, 4)).run(root)
        cfg_1d = BFSConfig(mode=TraversalMode.TOP_DOWN)
        res_1d = BFSEngine(g, cluster, cfg_1d).run(root)
        bytes_1d = sum(
            float(lc.td_send_bytes.sum())
            for lc in res_1d.counts.levels
            if lc.td_send_bytes is not None
        )
        # Same rank count (16); the expand phase is bounded by column
        # size and the fold by row size.
        assert res_2d.total_comm_bytes < bytes_1d * 1.2

    def test_comm_bytes_tracked(self):
        g = rmat_graph(scale=12, seed=6)
        res = TwoDBFSEngine(
            g, paper_cluster(nodes=2), Grid2D(4, 4)
        ).run(int(np.argmax(g.degrees())))
        assert len(res.comm_bytes_per_level) == res.levels
        assert res.total_comm_bytes > 0
        assert res.seconds > 0
        assert res.teps > 0
