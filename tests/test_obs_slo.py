"""SLO objectives and multiwindow burn-rate evaluation."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SCHEMA,
    VERDICT_SEVERITY,
    SLOMonitor,
    SLOObjective,
    SLOSpec,
    record_for_slo_report,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


def monitor_with(spec: SLOSpec):
    clock = FakeClock()
    registry = MetricsRegistry()
    mon = SLOMonitor(registry, spec, clock=clock)
    return mon, registry, clock


ERRORS_ONLY = SLOSpec(
    name="errors",
    objectives=(SLOObjective(kind="error_rate", max_rate=0.01),),
    fast_window_s=5.0,
    slow_window_s=30.0,
)


class TestObjective:
    def test_latency_label_and_budget(self):
        obj = SLOObjective(kind="latency", threshold_ms=50.0, quantile=99.0)
        assert obj.label == "p99_le_50ms"
        assert obj.budget == pytest.approx(0.01)

    def test_error_rate_label_and_budget(self):
        obj = SLOObjective(kind="error_rate", max_rate=0.001)
        assert obj.label == "errors_le_0_1pct"
        assert obj.budget == 0.001

    def test_validation(self):
        with pytest.raises(ValueError):
            SLOObjective(kind="availability")
        with pytest.raises(ValueError):
            SLOObjective(kind="latency", threshold_ms=0.0)
        with pytest.raises(ValueError):
            SLOObjective(kind="latency", threshold_ms=5.0, quantile=100.0)
        with pytest.raises(ValueError):
            SLOObjective(kind="error_rate", max_rate=1.5)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SLOSpec(objectives=())
        with pytest.raises(ValueError):
            SLOSpec(fast_window_s=10.0, slow_window_s=5.0)


class TestVerdicts:
    def test_no_samples_is_insufficient(self):
        mon, _reg, _clock = monitor_with(ERRORS_ONLY)
        report = mon.evaluate()
        assert report["verdict"] == "insufficient"

    def test_no_traffic_is_insufficient_not_ok(self):
        mon, _reg, clock = monitor_with(ERRORS_ONLY)
        for t in (0.0, 10.0, 40.0):
            clock.t = t
            mon.sample()
        report = mon.evaluate()
        assert report["verdict"] == "insufficient"
        (obj,) = report["objectives"]
        assert obj["windows"]["fast"]["burn_rate"] is None

    def test_clean_traffic_is_ok(self):
        mon, reg, clock = monitor_with(ERRORS_ONLY)
        requests = reg.counter("serve.requests_total")
        mon.sample()
        for t in (10.0, 20.0, 40.0):
            clock.t = t
            requests.inc(100)
            mon.sample()
        report = mon.evaluate()
        assert report["verdict"] == "ok"
        assert report["totals"]["requests"] == 300.0
        assert report["totals"]["errors"] == 0.0

    def test_sustained_errors_breach(self):
        mon, reg, clock = monitor_with(ERRORS_ONLY)
        requests = reg.counter("serve.requests_total")
        errors = reg.counter("serve.errors_total")
        mon.sample()
        # Half of all traffic errors for a full slow window: burn 50
        # in both windows, way past 14.4 and 6.
        for t in (10.0, 20.0, 30.0, 40.0):
            clock.t = t
            requests.inc(100)
            errors.inc(50)
            mon.sample()
        report = mon.evaluate()
        assert report["verdict"] == "breach"
        (obj,) = report["objectives"]
        assert obj["windows"]["fast"]["burning"]
        assert obj["windows"]["slow"]["burning"]
        assert obj["windows"]["slow"]["burn_rate"] == pytest.approx(50.0)

    def test_recent_spike_is_fast_burn_only(self):
        mon, reg, clock = monitor_with(ERRORS_ONLY)
        requests = reg.counter("serve.requests_total")
        errors = reg.counter("serve.errors_total")
        mon.sample()
        # 25s of clean traffic dilutes the slow window...
        for t in (5.0, 10.0, 15.0, 20.0, 25.0):
            clock.t = t
            requests.inc(190)
            mon.sample()
        # ...then a hot last fast-window: 20% of its requests error.
        clock.t = 30.0
        requests.inc(50)
        errors.inc(10)
        mon.sample()
        report = mon.evaluate()
        (obj,) = report["objectives"]
        # fast: 10/50 = 0.2 -> burn 20 >= 14.4; slow: 10/1000 = 0.01
        # -> burn 1 < 6.
        assert obj["windows"]["fast"]["burning"]
        assert not obj["windows"]["slow"]["burning"]
        assert report["verdict"] == "fast_burn"

    def test_latency_objective_counts_slow_requests(self):
        spec = SLOSpec(
            name="latency",
            objectives=(
                SLOObjective(kind="latency", threshold_ms=50.0, quantile=90.0),
            ),
            fast_window_s=5.0,
            slow_window_s=30.0,
        )
        mon, reg, clock = monitor_with(spec)
        hist = reg.histogram("serve.latency_ms")
        mon.sample()
        # Budget is 10%; half the requests take 1s. Burn = 0.5/0.1 = 5
        # in both windows -> neither window passes its limit alone
        # (fast 14.4) but slow (6) is close; push to 80% slow.
        for t in (10.0, 20.0, 30.0, 40.0):
            clock.t = t
            for _ in range(2):
                hist.observe(1.0)  # well under 50 ms
            for _ in range(8):
                hist.observe(1000.0)  # well over
            mon.sample()
        report = mon.evaluate()
        (obj,) = report["objectives"]
        # 80% bad / 10% budget = burn 8: slow burns, fast (limit 14.4)
        # does not.
        assert obj["windows"]["slow"]["burning"]
        assert not obj["windows"]["fast"]["burning"]
        assert report["verdict"] == "slow_burn"

    def test_overall_verdict_is_worst_objective(self):
        spec = SLOSpec(
            name="both",
            objectives=(
                SLOObjective(kind="latency", threshold_ms=50.0, quantile=99.0),
                SLOObjective(kind="error_rate", max_rate=0.01),
            ),
            fast_window_s=5.0,
            slow_window_s=30.0,
        )
        mon, reg, clock = monitor_with(spec)
        requests = reg.counter("serve.requests_total")
        errors = reg.counter("serve.errors_total")
        hist = reg.histogram("serve.latency_ms")
        mon.sample()
        for t in (10.0, 20.0, 30.0, 40.0):
            clock.t = t
            requests.inc(100)
            errors.inc(50)  # error objective: breach
            for _ in range(100):
                hist.observe(1.0)  # latency objective: ok
            mon.sample()
        report = mon.evaluate()
        verdicts = {o["label"]: o["verdict"] for o in report["objectives"]}
        assert verdicts["p99_le_50ms"] == "ok"
        assert verdicts["errors_le_1pct"] == "breach"
        assert report["verdict"] == "breach"

    def test_severity_ordering(self):
        order = ["ok", "insufficient", "slow_burn", "fast_burn", "breach"]
        assert sorted(order, key=VERDICT_SEVERITY.__getitem__) == order


class TestReportShape:
    def test_schema_and_sections(self):
        mon, reg, clock = monitor_with(ERRORS_ONLY)
        reg.counter("serve.requests_total").inc(5)
        mon.sample()
        clock.t = 40.0
        reg.counter("serve.requests_total").inc(5)
        mon.sample()
        report = mon.evaluate()
        assert report["schema"] == SCHEMA
        assert report["slo"] == "errors"
        assert report["samples"] == 2
        assert report["elapsed_s"] == pytest.approx(40.0)
        assert report["spec"]["fast_window_s"] == 5.0

    def test_default_interval_spans_fast_window(self):
        mon, _reg, _clock = monitor_with(ERRORS_ONLY)
        assert mon.interval == pytest.approx(1.0)


class TestLedgerRecord:
    def _report(self):
        mon, reg, clock = monitor_with(ERRORS_ONLY)
        requests = reg.counter("serve.requests_total")
        mon.sample()
        for t in (10.0, 40.0):
            clock.t = t
            requests.inc(100)
            mon.sample()
        return mon.evaluate()

    def test_record_fields(self):
        record = record_for_slo_report(self._report(), source="test")
        assert record.kind == "slo"
        assert record.name == "errors"
        assert record.labels["verdict"] == "ok"
        assert record.labels["source"] == "test"
        assert record.metrics["requests"] == 200.0
        assert record.metrics["verdict_severity"] == 0.0
        assert any(".burn_rate" in k for k in record.metrics)
        assert record.extra["objective_verdicts"] == {
            "errors_le_1pct": "ok"
        }
        assert record.fingerprint

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            record_for_slo_report({"schema": "repro.serve/v1"})
