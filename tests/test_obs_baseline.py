"""Tests for the benchmark baseline store and policy-aware differ."""

import copy
import json

import pytest

from repro.obs.baseline import (
    Baseline,
    diff_baselines,
    metric_direction,
)


def _doc(benchmarks):
    return {
        "machine_info": {"node": "test"},
        "commit_info": {"id": "deadbeef", "branch": "main"},
        "datetime": "2026-08-06T00:00:00+00:00",
        "benchmarks": benchmarks,
    }


def _bench(name, extra_info=None, stats=None, params=None):
    return {
        "name": name,
        "group": None,
        "params": params,
        "extra_info": extra_info or {},
        "stats": stats or {"min": 0.1, "max": 0.2, "mean": 0.15},
    }


@pytest.fixture
def comm_doc():
    return _doc(
        [
            _bench(
                "test_comm_bytes[auto]",
                extra_info={
                    "codec": "auto",
                    "scale": 15,
                    "nodes": 16,
                    "ppn": 8,
                    "allgather_raw_bytes": 20800.0,
                    "allgather_wire_bytes": 10122.0,
                    "reduction_pct": 51.3,
                    "simulated_seconds": 4.1e-4,
                    "per_level_codecs": ["sparse-index", "raw"],
                },
            ),
            _bench(
                "test_kernel[activeset]",
                extra_info={
                    "backend": "activeset",
                    "scale": 15,
                    "examined_edges": 20932,
                    "gathered_edges": 33398,
                    "chunk_rounds": 2,
                },
            ),
        ]
    )


def _write(tmp_path, name, doc):
    p = tmp_path / name
    p.write_text(json.dumps(doc))
    return p


class TestMetricDirection:
    def test_policy(self):
        assert metric_direction("allgather_raw_bytes") == "equal"
        assert metric_direction("examined_edges") == "equal"
        assert metric_direction("inqueue_reads") == "equal"
        assert metric_direction("simulated_seconds") == "lower"
        assert metric_direction("allgather_wire_bytes") == "lower"
        assert metric_direction("wall_mean_s") == "lower"
        assert metric_direction("gathered_edges") == "lower"
        assert metric_direction("simulated_teps") == "higher"
        assert metric_direction("reduction_pct") == "higher"
        assert metric_direction("unheard_of_metric") == "info"


class TestBaselineLoad:
    def test_committed_baselines_parse(self):
        for path in ("BENCH_kernels.json", "BENCH_comm.json"):
            base = Baseline.from_benchmark_json(path)
            assert base.records
            assert base.commit
        comm = Baseline.from_benchmark_json("BENCH_comm.json")
        rec = comm.records["test_comm_bytes[auto]"]
        assert rec.context["codec"] == "auto"
        assert rec.context["scale"] == "15"
        assert rec.metrics["allgather_raw_bytes"] == 20800.0
        assert "wall_mean_s" in rec.metrics
        assert "per_level_codecs" in rec.facts

    def test_params_feed_context(self, tmp_path):
        doc = _doc(
            [_bench("b", params={"backend_name": "activeset"})]
        )
        base = Baseline.from_benchmark_json(_write(tmp_path, "a.json", doc))
        assert base.records["b"].context["backend"] == "activeset"

    def test_as_dict_roundtrips(self, comm_doc, tmp_path):
        base = Baseline.from_benchmark_json(
            _write(tmp_path, "a.json", comm_doc)
        )
        doc = json.loads(json.dumps(base.as_dict()))
        assert set(doc["records"]) == set(base.records)


class TestDiff:
    def test_identical_is_ok(self, comm_doc, tmp_path):
        p = _write(tmp_path, "a.json", comm_doc)
        base = Baseline.from_benchmark_json(p)
        verdict = diff_baselines(base, base)
        assert verdict.ok
        assert not verdict.regressions

    def test_teps_regression_gates(self, tmp_path, comm_doc):
        """Acceptance: a synthetic >= 20 % simulated-TEPS regression
        (simulated seconds up 25 %) fails the diff."""
        old = Baseline.from_benchmark_json(
            _write(tmp_path, "old.json", comm_doc)
        )
        bad = copy.deepcopy(comm_doc)
        bad["benchmarks"][0]["extra_info"]["simulated_seconds"] *= 1.25
        new = Baseline.from_benchmark_json(
            _write(tmp_path, "new.json", bad)
        )
        verdict = diff_baselines(old, new, tolerance_pct=20.0)
        assert not verdict.ok
        assert any(
            r.metric == "simulated_seconds" for r in verdict.regressions
        )

    def test_regression_within_tolerance_passes(self, tmp_path, comm_doc):
        old = Baseline.from_benchmark_json(
            _write(tmp_path, "old.json", comm_doc)
        )
        mild = copy.deepcopy(comm_doc)
        mild["benchmarks"][0]["extra_info"]["simulated_seconds"] *= 1.05
        new = Baseline.from_benchmark_json(
            _write(tmp_path, "new.json", mild)
        )
        assert diff_baselines(old, new, tolerance_pct=20.0).ok
        assert not diff_baselines(old, new, tolerance_pct=1.0).ok

    def test_improvement_not_gated(self, tmp_path, comm_doc):
        old = Baseline.from_benchmark_json(
            _write(tmp_path, "old.json", comm_doc)
        )
        better = copy.deepcopy(comm_doc)
        better["benchmarks"][0]["extra_info"]["simulated_seconds"] *= 0.5
        new = Baseline.from_benchmark_json(
            _write(tmp_path, "new.json", better)
        )
        verdict = diff_baselines(old, new, tolerance_pct=10.0)
        assert verdict.ok
        assert any(
            r.metric == "simulated_seconds" for r in verdict.improvements
        )

    def test_invariant_change_gates_regardless_of_direction(
        self, tmp_path, comm_doc
    ):
        old = Baseline.from_benchmark_json(
            _write(tmp_path, "old.json", comm_doc)
        )
        # examined_edges going DOWN would look like an improvement under
        # a directional policy, but it is a determinism invariant.
        mutated = copy.deepcopy(comm_doc)
        mutated["benchmarks"][1]["extra_info"]["examined_edges"] = 20000
        new = Baseline.from_benchmark_json(
            _write(tmp_path, "new.json", mutated)
        )
        verdict = diff_baselines(old, new, tolerance_pct=100.0)
        assert not verdict.ok
        row = next(r for r in verdict.regressions)
        assert row.metric == "examined_edges"
        assert row.status == "changed"

    def test_fact_change_gates(self, tmp_path, comm_doc):
        old = Baseline.from_benchmark_json(
            _write(tmp_path, "old.json", comm_doc)
        )
        mutated = copy.deepcopy(comm_doc)
        mutated["benchmarks"][0]["extra_info"]["per_level_codecs"] = [
            "raw", "raw",
        ]
        new = Baseline.from_benchmark_json(
            _write(tmp_path, "new.json", mutated)
        )
        verdict = diff_baselines(old, new, tolerance_pct=100.0)
        assert not verdict.ok
        assert any(
            r.metric == "per_level_codecs" and r.status == "changed"
            for r in verdict.regressions
        )

    def test_context_mismatch_is_incomparable_not_gated(
        self, tmp_path, comm_doc
    ):
        old = Baseline.from_benchmark_json(
            _write(tmp_path, "old.json", comm_doc)
        )
        smoke = copy.deepcopy(comm_doc)
        smoke["benchmarks"][1]["extra_info"]["scale"] = 12
        # even a wild metric change is not gated when contexts differ
        smoke["benchmarks"][1]["extra_info"]["examined_edges"] = 1
        new = Baseline.from_benchmark_json(
            _write(tmp_path, "new.json", smoke)
        )
        verdict = diff_baselines(old, new, tolerance_pct=1.0)
        rows = [
            r for r in verdict.rows
            if r.benchmark == "test_kernel[activeset]"
        ]
        assert len(rows) == 1
        assert rows[0].status == "incomparable"
        assert not rows[0].gating

    def test_missing_benchmark_gates_added_does_not(
        self, tmp_path, comm_doc
    ):
        old = Baseline.from_benchmark_json(
            _write(tmp_path, "old.json", comm_doc)
        )
        pruned = copy.deepcopy(comm_doc)
        dropped = pruned["benchmarks"].pop(1)
        pruned["benchmarks"].append(_bench("brand_new"))
        new = Baseline.from_benchmark_json(
            _write(tmp_path, "new.json", pruned)
        )
        verdict = diff_baselines(old, new)
        statuses = {r.benchmark: r.status for r in verdict.rows if r.metric == "-"}
        assert statuses[dropped["name"]] == "missing"
        assert statuses["brand_new"] == "added"
        assert not verdict.ok

    def test_wall_separable(self, tmp_path, comm_doc):
        old = Baseline.from_benchmark_json(
            _write(tmp_path, "old.json", comm_doc)
        )
        slower = copy.deepcopy(comm_doc)
        for b in slower["benchmarks"]:
            b["stats"] = {"min": 10.0, "max": 11.0, "mean": 10.5}
        new = Baseline.from_benchmark_json(
            _write(tmp_path, "new.json", slower)
        )
        gated = diff_baselines(
            old, new, tolerance_pct=10.0, include_wall=True
        )
        assert not gated.ok
        assert all(
            r.metric.startswith("wall_") for r in gated.regressions
        )
        ignored = diff_baselines(
            old, new, tolerance_pct=10.0, include_wall=False
        )
        assert ignored.ok
        assert not any(
            r.metric.startswith("wall_") for r in ignored.rows
        )

    def test_verdict_json_schema(self, tmp_path, comm_doc):
        base = Baseline.from_benchmark_json(
            _write(tmp_path, "a.json", comm_doc)
        )
        verdict = diff_baselines(base, base)
        doc = json.loads(verdict.to_json())
        assert doc["schema"] == "repro.perfdiff/v1"
        assert doc["ok"] is True
        assert doc["regressions"] == []
        assert len(doc["rows"]) == len(verdict.rows)

    def test_to_text_renders(self, tmp_path, comm_doc):
        base = Baseline.from_benchmark_json(
            _write(tmp_path, "a.json", comm_doc)
        )
        text = diff_baselines(base, base).to_text()
        assert "perf diff OK" in text


class TestProvenanceWarnings:
    """Environment mismatches warn but never gate (satellite: baselines
    carry the host provenance stamped by ``benchmarks/conftest.py``)."""

    @staticmethod
    def _with_provenance(doc, provenance):
        out = copy.deepcopy(doc)
        for bench in out["benchmarks"]:
            bench["extra_info"]["provenance"] = dict(provenance)
        return out

    def test_provenance_routed_to_record(self, tmp_path, comm_doc):
        doc = self._with_provenance(
            comm_doc, {"python": "3.12.0", "hostname": "a", "cpu_count": 8}
        )
        base = Baseline.from_benchmark_json(_write(tmp_path, "a.json", doc))
        rec = base.records["test_comm_bytes[auto]"]
        assert rec.provenance == {
            "python": "3.12.0", "hostname": "a", "cpu_count": "8",
        }
        # The block is neither a context axis nor a gated metric.
        assert "provenance" not in rec.context
        assert "provenance" not in rec.metrics

    def test_mismatch_warns_without_gating(self, tmp_path, comm_doc):
        old = Baseline.from_benchmark_json(
            _write(
                tmp_path,
                "old.json",
                self._with_provenance(
                    comm_doc, {"python": "3.10.0", "hostname": "a"}
                ),
            )
        )
        new = Baseline.from_benchmark_json(
            _write(
                tmp_path,
                "new.json",
                self._with_provenance(
                    comm_doc, {"python": "3.12.0", "hostname": "a"}
                ),
            )
        )
        verdict = diff_baselines(old, new)
        assert verdict.ok  # warnings never gate
        assert not verdict.regressions
        (row,) = verdict.warnings
        assert row.status == "warning"
        assert row.metric == "provenance.python"
        assert row.old == "3.10.0" and row.new == "3.12.0"
        text = verdict.to_text()
        assert "1 warning(s)" in text
        assert "provenance.python" in text

    def test_mismatch_deduped_across_benchmarks(self, tmp_path, comm_doc):
        # comm_doc carries two benchmarks; the identical file-wide
        # mismatch must produce one warning row, not one per benchmark.
        old = Baseline.from_benchmark_json(
            _write(
                tmp_path,
                "old.json",
                self._with_provenance(comm_doc, {"hostname": "a"}),
            )
        )
        new = Baseline.from_benchmark_json(
            _write(
                tmp_path,
                "new.json",
                self._with_provenance(comm_doc, {"hostname": "b"}),
            )
        )
        verdict = diff_baselines(old, new)
        assert len(verdict.warnings) == 1
        assert verdict.warnings[0].benchmark == "*"

    def test_matching_or_absent_provenance_is_silent(self, tmp_path, comm_doc):
        stamped = self._with_provenance(comm_doc, {"hostname": "a"})
        old = Baseline.from_benchmark_json(
            _write(tmp_path, "old.json", stamped)
        )
        same = Baseline.from_benchmark_json(
            _write(tmp_path, "same.json", stamped)
        )
        assert not diff_baselines(old, same).warnings
        # A side with no provenance at all cannot be compared -> silent.
        bare = Baseline.from_benchmark_json(
            _write(tmp_path, "bare.json", comm_doc)
        )
        assert not diff_baselines(old, bare).warnings
