"""Unit and property tests for repro.util.bitops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import bitops


def make_words(nbits):
    return np.zeros(bitops.words_for_bits(nbits), dtype=np.uint64)


class TestWordsForBits:
    def test_exact_boundaries(self):
        assert bitops.words_for_bits(0) == 0
        assert bitops.words_for_bits(1) == 1
        assert bitops.words_for_bits(64) == 1
        assert bitops.words_for_bits(65) == 2
        assert bitops.words_for_bits(128) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bitops.words_for_bits(-1)


class TestSetGetClear:
    def test_set_then_get(self):
        w = make_words(200)
        bitops.set_bits(w, np.array([0, 63, 64, 199]))
        got = bitops.get_bits(w, np.array([0, 63, 64, 199, 1, 100]))
        assert got.tolist() == [True, True, True, True, False, False]

    def test_repeated_indices(self):
        w = make_words(64)
        bitops.set_bits(w, np.array([5, 5, 5]))
        assert bitops.count_set_bits(w) == 1

    def test_clear(self):
        w = make_words(128)
        bitops.set_bits(w, np.arange(128))
        bitops.clear_bits(w, np.array([0, 64, 127]))
        assert bitops.count_set_bits(w) == 125
        assert not bitops.get_bits(w, np.array([0]))[0]

    def test_empty_index_noop(self):
        w = make_words(64)
        bitops.set_bits(w, np.array([], dtype=np.int64))
        bitops.clear_bits(w, np.array([], dtype=np.int64))
        assert bitops.count_set_bits(w) == 0

    def test_wrong_dtype_rejected(self):
        w = np.zeros(2, dtype=np.int64)
        with pytest.raises(TypeError):
            bitops.set_bits(w, np.array([1]))


class TestPopcount:
    def test_popcount_words(self):
        w = np.array([0, 1, 3, 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        assert bitops.popcount_words(w).tolist() == [0, 1, 2, 64]

    def test_count_with_nbits_masks_padding(self):
        w = make_words(70)
        bitops.set_bits(w, np.arange(70))
        # Manually pollute padding bits.
        w[1] |= np.uint64(1) << np.uint64(63)
        assert bitops.count_set_bits(w, nbits=70) == 70

    def test_count_empty(self):
        assert bitops.count_set_bits(np.zeros(0, dtype=np.uint64)) == 0


class TestConversions:
    def test_round_trip_bool(self):
        rng = np.random.default_rng(0)
        flags = rng.random(1000) < 0.3
        w = bitops.bool_to_bits(flags)
        back = bitops.bits_to_bool(w, flags.size)
        assert np.array_equal(flags, back)

    def test_nonzero_bit_indices(self):
        w = make_words(130)
        idx = np.array([3, 77, 129])
        bitops.set_bits(w, idx)
        assert np.array_equal(bitops.nonzero_bit_indices(w, 130), idx)


@settings(max_examples=60, deadline=None)
@given(
    nbits=st.integers(min_value=1, max_value=600),
    data=st.data(),
)
def test_property_set_get_roundtrip(nbits, data):
    idx = data.draw(
        st.lists(st.integers(min_value=0, max_value=nbits - 1), max_size=50)
    )
    w = make_words(nbits)
    bitops.set_bits(w, np.array(idx, dtype=np.int64))
    expected = np.zeros(nbits, dtype=bool)
    expected[idx] = True
    assert np.array_equal(bitops.bits_to_bool(w, nbits), expected)
    assert bitops.count_set_bits(w, nbits=nbits) == len(set(idx))


@settings(max_examples=40, deadline=None)
@given(st.lists(st.booleans(), min_size=0, max_size=300))
def test_property_pack_unpack(flags):
    flags = np.array(flags, dtype=bool)
    w = bitops.bool_to_bits(flags)
    assert np.array_equal(bitops.bits_to_bool(w, flags.size), flags)
    assert bitops.count_set_bits(w) == int(flags.sum())
