"""Tests for the automatic calibration tool."""

import pytest

from repro.errors import ConfigError
from repro.machine import paper_cluster
from repro.model.fit import (
    PAPER_TARGETS,
    CalibrationTarget,
    calibrate,
    objective,
)
from repro.model.sensitivity import perturb
from repro.core import BFSConfig


class TestObjective:
    def test_default_machine_is_near_optimal(self):
        """The shipped constants were calibrated to these targets, so the
        objective at the default machine must be small (each target hit
        within ~25%)."""
        err = objective(paper_cluster(nodes=16))
        n_weighted = sum(t.weight for t in PAPER_TARGETS)
        import math

        assert err < n_weighted * math.log(1.25) ** 2

    def test_detuned_machine_scores_worse(self):
        base = paper_cluster(nodes=16)
        detuned = perturb(base, "congestion_per_socket", 0.2)
        assert objective(detuned) > objective(base)

    def test_targets_measured_in_band(self):
        cluster = paper_cluster(nodes=16)
        for target in PAPER_TARGETS:
            measured = target.measured(cluster)
            assert measured / target.target_ratio < 1.5
            assert target.target_ratio / measured < 1.5


class TestCalibrate:
    def test_recovers_from_detuned_start(self):
        """Starting from a deliberately detuned machine, the search must
        reduce the objective substantially."""
        detuned = perturb(paper_cluster(nodes=16), "congestion_per_socket", 0.3)
        start_err = objective(detuned)
        result = calibrate(start=detuned, rounds=3)
        assert result.error < start_err * 0.5
        # It should push the congestion constant back up.
        assert result.multipliers["congestion_per_socket"] > 1.0

    def test_default_start_does_not_regress(self):
        base_err = objective(paper_cluster(nodes=16))
        result = calibrate(rounds=1)
        assert result.error <= base_err + 1e-12

    def test_validation(self):
        with pytest.raises(ConfigError):
            calibrate(constants=("nonsense",))
        with pytest.raises(ConfigError):
            calibrate(rounds=0)
        with pytest.raises(ConfigError):
            calibrate(step=0.9)

    def test_custom_target(self):
        """A custom target (a different 'measured machine') is usable."""
        target = CalibrationTarget(
            name="custom",
            slow=BFSConfig.original_ppn1(),
            fast=BFSConfig.original_ppn8(),
            target_ratio=1.2,
            scale=28,
        )
        err = objective(paper_cluster(nodes=8), (target,))
        assert err >= 0.0
