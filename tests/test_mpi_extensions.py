"""Tests for the collective extensions: multi-leader allgather, the
configurable parallel subgroup count, and cross-algorithm equivalence
properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CommunicationError
from repro.machine import paper_cluster
from repro.machine.spec import MB
from repro.mpi import (
    AllgatherAlgorithm,
    NodeSharedBuffer,
    ProcessMapping,
    SimComm,
    allgather,
    allgather_time,
    parallel_allgather_time,
)


def make_comm(nodes=4, ppn=8):
    from repro.mpi import BindingPolicy

    cluster = paper_cluster(nodes=nodes)
    policy = (
        BindingPolicy.INTERLEAVE
        if ppn < cluster.node.sockets
        else BindingPolicy.BIND_TO_SOCKET
    )
    return SimComm(cluster, ProcessMapping(cluster, ppn=ppn, policy=policy))


def shared_bufs(comm, total_words):
    return [NodeSharedBuffer(n, total_words) for n in range(comm.cluster.nodes)]


class TestMultiLeader:
    def test_functional_equivalence(self):
        comm = make_comm()
        rng = np.random.default_rng(5)
        parts = [
            rng.integers(0, 2**63, size=32).astype(np.uint64)
            for _ in range(comm.num_ranks)
        ]
        expected = np.concatenate(parts)
        res = allgather(
            comm,
            parts,
            AllgatherAlgorithm.MULTI_LEADER,
            shared_bufs(comm, expected.size),
        )
        for buf in res.data:
            assert np.array_equal(buf.data, expected)

    def test_moves_ppn_times_the_data(self):
        """The paper's III.B critique: each leader still receives the
        full payload, so multi-leader costs ~ppn x the parallel scheme's
        inter-node step."""
        comm = make_comm(nodes=8, ppn=8)
        part = 64 * MB / comm.num_ranks
        t_multi, _ = allgather_time(
            comm, AllgatherAlgorithm.MULTI_LEADER, part
        )
        t_par, _ = allgather_time(
            comm, AllgatherAlgorithm.PARALLEL_SHARED, part
        )
        assert 4 < t_multi / t_par < 12

    def test_single_node_free(self):
        comm = make_comm(nodes=1, ppn=8)
        t, _ = allgather_time(comm, AllgatherAlgorithm.MULTI_LEADER, 1024.0)
        assert t == 0.0


class TestParallelSubgroups:
    def test_monotone_in_subgroups(self):
        comm = make_comm(nodes=8, ppn=8)
        part = 64 * MB / comm.num_ranks
        times = [
            parallel_allgather_time(comm, part, s) for s in (1, 2, 4, 8)
        ]
        assert times == sorted(times, reverse=True)

    def test_one_subgroup_equals_single_leader_step(self):
        comm = make_comm(nodes=8, ppn=8)
        part = 64 * MB / comm.num_ranks
        t1 = parallel_allgather_time(comm, part, 1)
        t_leader, steps = allgather_time(
            comm, AllgatherAlgorithm.SHARED_ALL, part
        )
        assert t1 == pytest.approx(steps["inter"])

    def test_full_subgroups_match_parallel_shared(self):
        comm = make_comm(nodes=8, ppn=8)
        part = 64 * MB / comm.num_ranks
        t8 = parallel_allgather_time(comm, part, 8)
        t_par, steps = allgather_time(
            comm, AllgatherAlgorithm.PARALLEL_SHARED, part
        )
        assert t8 == pytest.approx(steps["inter"])

    def test_validation(self):
        comm = make_comm(nodes=2, ppn=8)
        with pytest.raises(CommunicationError):
            parallel_allgather_time(comm, 1024.0, 0)
        with pytest.raises(CommunicationError):
            parallel_allgather_time(comm, 1024.0, 9)

    def test_zero_bytes_free(self):
        comm = make_comm(nodes=2, ppn=8)
        assert parallel_allgather_time(comm, 0.0, 4) == 0.0


ALL_ALGORITHMS = list(AllgatherAlgorithm)


@settings(max_examples=25, deadline=None)
@given(
    words=st.integers(min_value=0, max_value=40),
    seed=st.integers(min_value=0, max_value=10**6),
    nodes=st.sampled_from([1, 2, 4]),
    ppn=st.sampled_from([1, 2, 8]),
)
def test_property_all_algorithms_gather_identically(words, seed, nodes, ppn):
    """Data equivalence across the entire algorithm family, including
    unequal part sizes."""
    comm = make_comm(nodes=nodes, ppn=ppn)
    rng = np.random.default_rng(seed)
    parts = [
        rng.integers(0, 2**63, size=words + (r % 2)).astype(np.uint64)
        for r in range(comm.num_ranks)
    ]
    expected = np.concatenate(parts)
    for algo in ALL_ALGORITHMS:
        shared = algo in (
            AllgatherAlgorithm.SHARED_IN,
            AllgatherAlgorithm.SHARED_ALL,
            AllgatherAlgorithm.PARALLEL_SHARED,
            AllgatherAlgorithm.MULTI_LEADER,
        )
        bufs = shared_bufs(comm, expected.size) if shared else None
        res = allgather(comm, parts, algo, bufs)
        if shared:
            for buf in res.data:
                assert np.array_equal(buf.data, expected), algo
        else:
            assert np.array_equal(res.data, expected), algo
        assert np.all(res.rank_times >= 0.0)


@settings(max_examples=25, deadline=None)
@given(
    part_kb=st.floats(min_value=0.1, max_value=10_000),
    nodes=st.sampled_from([2, 4, 8]),
)
def test_property_optimization_chain_never_hurts(part_kb, nodes):
    """For any payload, the paper's optimization chain is monotone:
    leader >= shared_in >= shared_all >= parallel_shared."""
    comm = make_comm(nodes=nodes, ppn=8)
    part = part_kb * 1024
    chain = [
        AllgatherAlgorithm.LEADER,
        AllgatherAlgorithm.SHARED_IN,
        AllgatherAlgorithm.SHARED_ALL,
        AllgatherAlgorithm.PARALLEL_SHARED,
    ]
    times = [allgather_time(comm, a, part)[0] for a in chain]
    for slower, faster in zip(times, times[1:]):
        assert faster <= slower + 1e-6


@settings(max_examples=30, deadline=None)
@given(
    small_kb=st.floats(min_value=1.0, max_value=100.0),
    factor=st.floats(min_value=1.1, max_value=50.0),
    algo=st.sampled_from(ALL_ALGORITHMS),
)
def test_property_allgather_time_monotone_in_payload(small_kb, factor, algo):
    """For every algorithm, more bytes can never be faster."""
    comm = make_comm(nodes=4, ppn=8)
    small = small_kb * 1024
    t_small, _ = allgather_time(comm, algo, small)
    t_big, _ = allgather_time(comm, algo, small * factor)
    assert t_big >= t_small - 1e-9


class TestLeaderOverlapped:
    def test_overlap_helps_but_sharing_wins(self):
        """The paper's Fig. 6 argument quantified: perfect intra/inter
        overlap improves on the plain leader scheme but cannot match
        removing the intra steps via sharing."""
        comm = make_comm(nodes=16, ppn=8)
        part = 512 * MB / comm.num_ranks
        t_leader, _ = allgather_time(comm, AllgatherAlgorithm.LEADER, part)
        t_overlap, _ = allgather_time(
            comm, AllgatherAlgorithm.LEADER_OVERLAPPED, part
        )
        t_shared, _ = allgather_time(comm, AllgatherAlgorithm.SHARED_IN, part)
        assert t_overlap < t_leader
        assert t_shared < t_overlap

    def test_overlap_bounded_below_by_slowest_side(self):
        comm = make_comm(nodes=8, ppn=8)
        part = 64 * MB / comm.num_ranks
        _, steps = allgather_time(comm, AllgatherAlgorithm.LEADER, part)
        t_overlap, _ = allgather_time(
            comm, AllgatherAlgorithm.LEADER_OVERLAPPED, part
        )
        intra = steps["intra_gather"] + steps["intra_bcast"]
        assert t_overlap == pytest.approx(max(intra, steps["inter"]))

    def test_functional_equivalence(self):
        comm = make_comm(nodes=2, ppn=2)
        rng = np.random.default_rng(9)
        parts = [
            rng.integers(0, 2**63, size=16).astype(np.uint64)
            for _ in range(comm.num_ranks)
        ]
        res = allgather(comm, parts, AllgatherAlgorithm.LEADER_OVERLAPPED)
        assert np.array_equal(res.data, np.concatenate(parts))
