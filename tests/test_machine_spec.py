"""Tests for machine specifications and the QPI topology."""

import pytest

from repro.errors import ConfigError
from repro.machine import (
    CacheLevel,
    ClusterSpec,
    IbSpec,
    NodeSpec,
    QpiTopology,
    SocketSpec,
    paper_cluster,
    x7550_node,
    x7550_socket,
)
from repro.machine.spec import GB, KB, MB, QpiSpec


class TestSpecs:
    def test_table1_values(self):
        """The default node matches Table I of the paper."""
        node = x7550_node()
        assert node.sockets == 8
        assert node.cores == 64
        assert node.socket.frequency_hz == 2.0e9
        names = [c.name for c in node.socket.caches]
        assert names == ["L1D", "L2", "L3"]
        assert node.socket.caches[0].capacity_bytes == 32 * KB
        assert node.socket.caches[1].capacity_bytes == 256 * KB
        assert node.socket.caches[2].capacity_bytes == 18 * MB
        assert node.socket.dram_bandwidth == pytest.approx(17.1e9)
        assert node.dram_total == 256 * GB
        assert node.ib.ports == 2

    def test_paper_cluster(self):
        cluster = paper_cluster()
        assert cluster.nodes == 16
        assert cluster.total_cores == 1024
        assert cluster.total_sockets == 128

    def test_weak_node(self):
        cluster = paper_cluster(weak_node=True)
        assert cluster.network_derating(15) < 1.0
        assert cluster.network_derating(0) == 1.0

    def test_with_nodes_drops_out_of_range_weak(self):
        cluster = paper_cluster(weak_node=True).with_nodes(8)
        assert cluster.nodes == 8
        assert cluster.weak_nodes == {}

    def test_cache_validation(self):
        with pytest.raises(ConfigError):
            CacheLevel("bad", 0, 1.0)
        with pytest.raises(ConfigError):
            CacheLevel("bad", 10, -1.0)

    def test_socket_cache_ordering_enforced(self):
        with pytest.raises(ConfigError):
            SocketSpec(
                caches=(
                    CacheLevel("L1", 64 * KB, 1.0),
                    CacheLevel("L2", 32 * KB, 2.0),
                )
            )

    def test_ib_curve_validation(self):
        with pytest.raises(ConfigError):
            IbSpec(bw_vs_flows=((2, 0.5), (1, 1.0)))
        with pytest.raises(ConfigError):
            IbSpec(bw_vs_flows=((1, 0.9), (2, 0.5)))
        with pytest.raises(ConfigError):
            IbSpec(bw_vs_flows=((1, 1.5),))

    def test_cluster_validation(self):
        with pytest.raises(ConfigError):
            ClusterSpec(nodes=0)
        with pytest.raises(ConfigError):
            ClusterSpec(nodes=2, weak_nodes={5: 0.5})
        with pytest.raises(ConfigError):
            ClusterSpec(nodes=2, weak_nodes={0: 0.0})

    def test_llc_accessor(self):
        assert x7550_socket().llc.name == "L3"
        with pytest.raises(ConfigError):
            SocketSpec(caches=()).llc


class TestQpiTopology:
    def test_eight_socket_hypercube(self):
        topo = QpiTopology(x7550_node())
        # 3-D hypercube: diameter 3, 12 links, 3 links per socket.
        assert len(topo.links) == 12
        assert topo.hops(0, 0) == 0
        assert topo.hops(0, 1) == 1
        assert topo.hops(0, 7) == 3
        assert topo.mean_remote_hops() == pytest.approx(12 / 7)

    def test_single_socket(self):
        node = NodeSpec(sockets=1, socket=x7550_socket())
        topo = QpiTopology(node)
        assert topo.mean_remote_hops() == 0.0

    def test_non_power_of_two_connected(self):
        node = NodeSpec(sockets=6, socket=x7550_socket())
        topo = QpiTopology(node)
        for i in range(6):
            for j in range(6):
                assert topo.hops(i, j) <= 3

    def test_remote_latencies_ordering(self):
        """Paper II.D(d): remote LLC is faster than local DRAM, which is
        faster than remote DRAM."""
        node = x7550_node()
        topo = QpiTopology(node)
        assert topo.remote_llc_latency() < node.socket.dram_latency_ns
        assert topo.remote_dram_latency() > node.socket.dram_latency_ns

    def test_hops_out_of_range(self):
        topo = QpiTopology(x7550_node())
        with pytest.raises(ConfigError):
            topo.hops(0, 8)

    def test_qpi_spec_validation(self):
        with pytest.raises(ConfigError):
            QpiSpec(link_bandwidth=0)
        with pytest.raises(ConfigError):
            QpiSpec(links_per_socket=0)
