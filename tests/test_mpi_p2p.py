"""Tests for the superstep point-to-point layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CommunicationError
from repro.machine import paper_cluster
from repro.mpi import ProcessMapping, SimComm
from repro.mpi.p2p import ANY, MessageLedger


@pytest.fixture()
def ledger():
    cluster = paper_cluster(nodes=2)
    comm = SimComm(cluster, ProcessMapping(cluster, ppn=2))
    return MessageLedger(comm)


class TestSendRecv:
    def test_round_trip(self, ledger):
        ledger.send(0, 1, np.array([1, 2, 3]))
        ledger.exchange()
        msg = ledger.recv(1)
        assert msg.src == 0
        assert np.array_equal(msg.payload, [1, 2, 3])

    def test_fifo_per_channel(self, ledger):
        ledger.send(0, 1, np.array([1]))
        ledger.send(0, 1, np.array([2]))
        ledger.exchange()
        assert ledger.recv(1).payload[0] == 1
        assert ledger.recv(1).payload[0] == 2

    def test_tag_matching(self, ledger):
        ledger.send(0, 1, np.array([10]), tag=7)
        ledger.send(0, 1, np.array([20]), tag=3)
        ledger.exchange()
        assert ledger.recv(1, tag=3).payload[0] == 20
        assert ledger.recv(1, tag=7).payload[0] == 10

    def test_any_source_deterministic(self, ledger):
        ledger.send(2, 1, np.array([22]))
        ledger.send(0, 1, np.array([11]))
        ledger.exchange()
        # Lowest source wins for ANY.
        assert ledger.recv(1, src=ANY).payload[0] == 11
        assert ledger.recv(1, src=ANY).payload[0] == 22

    def test_recv_without_exchange_deadlocks(self, ledger):
        ledger.send(0, 1, np.array([1]))
        with pytest.raises(CommunicationError, match="deadlock"):
            ledger.recv(1)

    def test_recv_wrong_destination(self, ledger):
        ledger.send(0, 1, np.array([1]))
        ledger.exchange()
        with pytest.raises(CommunicationError):
            ledger.recv(2)

    def test_rank_and_tag_validation(self, ledger):
        with pytest.raises(CommunicationError):
            ledger.send(99, 0, np.array([1]))
        with pytest.raises(CommunicationError):
            ledger.send(0, 99, np.array([1]))
        with pytest.raises(CommunicationError):
            ledger.send(0, 1, np.array([1]), tag=-2)
        with pytest.raises(CommunicationError):
            ledger.recv(99)


class TestExchange:
    def test_times_match_alltoallv(self, ledger):
        payload = np.zeros(1 << 16, dtype=np.int64)
        ledger.send(0, 3, payload)
        ledger.send(2, 1, payload)
        res = ledger.exchange()
        n = ledger.comm.num_ranks
        matrix = np.zeros((n, n))
        matrix[0, 3] = payload.nbytes
        matrix[2, 1] = payload.nbytes
        expected = ledger.comm.alltoallv_time(matrix)
        assert np.allclose(res.rank_times, expected)
        assert res.data == 2

    def test_empty_exchange_free(self, ledger):
        res = ledger.exchange()
        assert res.max_time == 0.0

    def test_multiple_supersteps(self, ledger):
        ledger.send(0, 1, np.array([1]))
        ledger.exchange()
        ledger.send(1, 0, np.array([2]))
        ledger.exchange()
        assert ledger.recv(1).payload[0] == 1
        assert ledger.recv(0).payload[0] == 2


class TestHygiene:
    def test_probe_and_recv_all(self, ledger):
        for s in (0, 2, 3):
            ledger.send(s, 1, np.array([s]))
        ledger.exchange()
        assert ledger.probe(1)
        msgs = ledger.recv_all(1)
        assert [m.src for m in msgs] == [0, 2, 3]
        assert not ledger.probe(1)

    def test_assert_drained_clean(self, ledger):
        ledger.send(0, 1, np.array([1]))
        ledger.exchange()
        ledger.recv(1)
        ledger.assert_drained()

    def test_assert_drained_detects_unreceived(self, ledger):
        ledger.send(0, 1, np.array([1]))
        ledger.exchange()
        with pytest.raises(CommunicationError, match="never received"):
            ledger.assert_drained()

    def test_assert_drained_detects_unexchanged(self, ledger):
        ledger.send(0, 1, np.array([1]))
        with pytest.raises(CommunicationError, match="never exchanged"):
            ledger.assert_drained()


@settings(max_examples=40, deadline=None)
@given(
    msgs=st.lists(
        st.tuples(
            st.integers(0, 3),  # src
            st.integers(0, 3),  # dst
            st.integers(0, 2),  # tag
        ),
        max_size=25,
    )
)
def test_property_every_message_delivered_exactly_once(msgs):
    cluster = paper_cluster(nodes=2)
    comm = SimComm(cluster, ProcessMapping(cluster, ppn=2))
    ledger = MessageLedger(comm)
    for k, (src, dst, tag) in enumerate(msgs):
        ledger.send(src, dst, np.array([k]), tag=tag)
    ledger.exchange()
    received = []
    for dst in range(4):
        received.extend(ledger.recv_all(dst))
    assert sorted(m.payload[0] for m in received) == list(range(len(msgs)))
    ledger.assert_drained()
