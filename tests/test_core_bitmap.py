"""Tests for Bitmap and the granularity-tunable SummaryBitmap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.core.bitmap import Bitmap, SummaryBitmap, summary_words_for


class TestBitmap:
    def test_set_test_count(self):
        bm = Bitmap(300)
        bm.set(np.array([0, 64, 299]))
        assert bm.count() == 3
        assert bm.test(np.array([0, 1, 299])).tolist() == [True, False, True]

    def test_from_indices(self):
        bm = Bitmap.from_indices(100, np.array([5, 50]))
        assert bm.indices().tolist() == [5, 50]

    def test_out_of_range_rejected(self):
        bm = Bitmap(64)
        with pytest.raises(ConfigError):
            bm.set(np.array([64]))
        with pytest.raises(ConfigError):
            bm.set(np.array([-1]))

    def test_clear_and_copy(self):
        bm = Bitmap.from_indices(100, np.array([1, 2]))
        cp = bm.copy()
        bm.clear()
        assert bm.count() == 0
        assert cp.count() == 2

    def test_wrong_word_shape(self):
        with pytest.raises(ConfigError):
            Bitmap(100, words=np.zeros(1, dtype=np.uint64))

    def test_zero_bits(self):
        bm = Bitmap(0)
        assert bm.count() == 0
        assert bm.nbytes == 0


class TestSummaryWordsFor:
    def test_values(self):
        assert summary_words_for(64 * 64, 64) == 1
        assert summary_words_for(64 * 64, 128) == 1
        assert summary_words_for(2**20, 64) == 2**20 // 64 // 64

    def test_bad_granularity(self):
        with pytest.raises(ConfigError):
            summary_words_for(100, 32)
        with pytest.raises(ConfigError):
            summary_words_for(100, 100)


class TestSummaryBitmap:
    def test_build_semantics(self):
        base = Bitmap.from_indices(512, np.array([0, 100, 300]))
        s = SummaryBitmap.build(base, granularity=64)
        # blocks: 0 (bit 0), 1 (bit 100), 4 (bit 300) are non-empty
        assert s.test_vertices(np.array([0, 63])).tolist() == [True, True]
        assert s.test_vertices(np.array([64, 127])).tolist() == [True, True]
        assert s.test_vertices(np.array([128])).tolist() == [False]
        assert s.test_vertices(np.array([300, 511])).tolist() == [True, False]

    def test_larger_granularity_fewer_zeros(self):
        """III.C.2: raising granularity cannot increase the zero
        fraction."""
        rng = np.random.default_rng(3)
        base = Bitmap.from_indices(
            1 << 14, rng.choice(1 << 14, size=200, replace=False)
        )
        fractions = [
            SummaryBitmap.build(base, g).zero_fraction()
            for g in (64, 128, 256, 512, 1024)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(fractions, fractions[1:]))

    def test_larger_granularity_smaller_size(self):
        base = Bitmap(1 << 16)
        sizes = [SummaryBitmap.build(base, g).nbytes for g in (64, 256, 1024)]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_rebuild_after_change(self):
        base = Bitmap(256)
        s = SummaryBitmap.build(base, 64)
        assert s.zero_fraction() == 1.0
        base.set(np.array([200]))
        s.rebuild(base)
        assert s.test_vertices(np.array([200]))[0]

    def test_rebuild_wrong_base(self):
        s = SummaryBitmap(128, 64)
        with pytest.raises(ConfigError):
            s.rebuild(Bitmap(256))

    def test_unaligned_tail(self):
        """nbits not a multiple of the granularity still works."""
        base = Bitmap.from_indices(100, np.array([99]))
        s = SummaryBitmap.build(base, 64)
        assert s.nblocks == 2
        assert s.test_vertices(np.array([99]))[0]

    def test_test_vertices_out_of_range(self):
        s = SummaryBitmap(100, 64)
        with pytest.raises(ConfigError):
            s.test_vertices(np.array([100]))

    def test_empty_bitmap_zero_fraction(self):
        s = SummaryBitmap(0, 64)
        assert s.zero_fraction() == 0.0


@settings(max_examples=60, deadline=None)
@given(
    nbits=st.integers(min_value=1, max_value=2000),
    granularity=st.sampled_from([64, 128, 256, 512]),
    data=st.data(),
)
def test_property_summary_matches_bruteforce(nbits, granularity, data):
    idx = data.draw(
        st.lists(st.integers(min_value=0, max_value=nbits - 1), max_size=40)
    )
    base = Bitmap.from_indices(nbits, np.array(idx, dtype=np.int64))
    s = SummaryBitmap.build(base, granularity)
    # Brute force: block b non-empty iff some set bit falls in it.
    blocks_with_bits = {i // granularity for i in idx}
    for b in range(s.nblocks):
        probe = min(b * granularity, nbits - 1)
        if probe // granularity != b:
            continue
        expected = b in blocks_with_bits
        got = bool(s.test_vertices(np.array([probe]))[0])
        # probe's block is b by construction
        assert got == expected or (
            got and (probe // granularity) in blocks_with_bits
        )


@settings(max_examples=40, deadline=None)
@given(
    nbits=st.integers(min_value=64, max_value=4096),
    data=st.data(),
)
def test_property_summary_never_false_negative(nbits, data):
    """A set bit's block must always read as non-empty (the safety
    property the bottom-up skip relies on)."""
    idx = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=nbits - 1),
            min_size=1,
            max_size=30,
        )
    )
    g = data.draw(st.sampled_from([64, 128, 256]))
    base = Bitmap.from_indices(nbits, np.array(idx, dtype=np.int64))
    s = SummaryBitmap.build(base, g)
    assert bool(np.all(s.test_vertices(np.array(idx, dtype=np.int64))))
