"""Tests for the cache, memory-placement, network and compute cost models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.machine import (
    AccessCounts,
    CacheModel,
    ComputeContext,
    CostModel,
    MemoryModel,
    NetworkModel,
    Placement,
    StructureAccess,
    paper_cluster,
    x7550_node,
)
from repro.machine.spec import KB, MB


@pytest.fixture(scope="module")
def node():
    return x7550_node()


@pytest.fixture(scope="module")
def caches(node):
    return CacheModel(node)


@pytest.fixture(scope="module")
def memory(node):
    return MemoryModel(node)


class TestCacheModel:
    def test_tiny_structure_hits_l1(self, caches, node):
        bd = caches.access_latency(1 * KB)
        assert bd.avg_latency_ns == pytest.approx(
            node.socket.caches[0].latency_ns
        )

    def test_huge_structure_goes_to_dram(self, caches, node):
        bd = caches.access_latency(64 * 1024 * MB)
        assert bd.fractions["local_dram"] > 0.99
        # Random reads into a multi-GB structure pay DRAM plus a TLB walk.
        assert bd.avg_latency_ns == pytest.approx(
            node.socket.dram_latency_ns + node.socket.tlb_penalty_ns,
            rel=0.05,
        )

    def test_latency_monotone_in_size(self, caches):
        sizes = [1 * KB, 100 * KB, 4 * MB, 100 * MB, 4000 * MB]
        lats = [caches.access_latency(s).avg_latency_ns for s in sizes]
        assert lats == sorted(lats)

    def test_sharing_reduces_latency_for_llc_scale_structures(self, caches):
        """A 64 MB structure does not fit one 18 MB L3 but mostly fits
        8 x 18 MB: the paper's 'larger cache size' argument for the shared
        in_queue."""
        size = 64 * MB
        private = caches.access_latency(size, shared_sockets=1)
        shared = caches.access_latency(size, shared_sockets=8)
        assert shared.avg_latency_ns < private.avg_latency_ns

    def test_remote_dram_fraction_raises_latency(self, caches):
        size = 4000 * MB
        local = caches.access_latency(size, local_dram_fraction=1.0)
        mixed = caches.access_latency(size, local_dram_fraction=0.125)
        assert mixed.avg_latency_ns > local.avg_latency_ns

    def test_fractions_sum_to_one(self, caches):
        for size in [1 * KB, 1 * MB, 512 * MB]:
            bd = caches.access_latency(size, 0.5, shared_sockets=4)
            assert sum(bd.fractions.values()) == pytest.approx(1.0)

    def test_validation(self, caches):
        with pytest.raises(ConfigError):
            caches.access_latency(1 * MB, local_dram_fraction=1.5)
        with pytest.raises(ConfigError):
            caches.access_latency(1 * MB, shared_sockets=9)

    @settings(max_examples=30, deadline=None)
    @given(size=st.floats(min_value=1.0, max_value=1e12))
    def test_property_latency_bounded(self, caches, node, size):
        bd = caches.access_latency(size, local_dram_fraction=0.0)
        lo = node.socket.caches[0].latency_ns
        hi = (
            CacheModel(node).topology.remote_dram_latency()
            + node.socket.tlb_penalty_ns
        )
        assert lo <= bd.avg_latency_ns <= hi + 1e-9


class TestMemoryModel:
    def test_local_socket_fastest(self, memory):
        size = 1024 * MB
        lats = {
            p: memory.access_latency(StructureAccess("s", size, p))
            for p in Placement
        }
        assert lats[Placement.LOCAL_SOCKET] == min(lats.values())

    def test_single_socket_worst_when_spanning(self, memory):
        """noflag policies: all pages on one socket, threads everywhere."""
        size = 1024 * MB
        single = memory.access_latency(
            StructureAccess("s", size, Placement.SINGLE_SOCKET),
            threads_sockets=8,
        )
        inter = memory.access_latency(
            StructureAccess("s", size, Placement.INTERLEAVED),
            threads_sockets=8,
        )
        assert single >= inter

    def test_node_shared_beats_interleaved_for_mid_sizes(self, memory):
        """The shared in_queue of a scale-28 run (32 MB) benefits from
        cooperative L3 caching (II.D reasons b-d)."""
        size = 32 * MB
        shared = memory.access_latency(
            StructureAccess("inq", size, Placement.NODE_SHARED)
        )
        inter = memory.access_latency(
            StructureAccess("inq", size, Placement.INTERLEAVED)
        )
        assert shared < inter

    def test_interleave_has_more_bandwidth_than_single(self, memory):
        inter = memory.effective(Placement.INTERLEAVED, threads_sockets=8)
        single = memory.effective(Placement.SINGLE_SOCKET, threads_sockets=8)
        assert inter.stream_bandwidth > single.stream_bandwidth

    def test_copy_bandwidth_contention(self, memory):
        assert memory.copy_bandwidth(1) > memory.copy_bandwidth(7)
        with pytest.raises(ConfigError):
            memory.copy_bandwidth(0)

    def test_threads_sockets_validation(self, memory):
        with pytest.raises(ConfigError):
            memory.effective(Placement.INTERLEAVED, threads_sockets=9)


class TestNetworkModel:
    def test_fig4_shape(self):
        """More processes per node -> more bandwidth; 1 ppn is about half
        of peak; saturation by 8 ppn."""
        net = NetworkModel(paper_cluster())
        bw = {k: net.osu_bandwidth(k) for k in (1, 2, 4, 8)}
        assert bw[1] < bw[2] < bw[4] < bw[8]
        assert bw[1] / bw[8] == pytest.approx(0.5, abs=0.1)
        assert net.osu_bandwidth(16) <= bw[8] * 1.01

    def test_flow_bandwidth_decreases_with_flows(self):
        net = NetworkModel(paper_cluster())
        assert net.flow_bandwidth(1) > net.flow_bandwidth(8)

    def test_weak_node_derated(self):
        net = NetworkModel(paper_cluster(weak_node=True))
        assert net.node_bandwidth(8, node_index=15) < net.node_bandwidth(
            8, node_index=0
        )

    def test_transfer_time_includes_latency(self):
        net = NetworkModel(paper_cluster())
        assert net.transfer_time(0) == pytest.approx(
            net.ib.message_latency_ns
        )

    def test_validation(self):
        net = NetworkModel(paper_cluster())
        with pytest.raises(ConfigError):
            net.transfer_time(-1)
        with pytest.raises(ConfigError):
            net.concurrency_fraction(0)
        with pytest.raises(ConfigError):
            net.osu_bandwidth(0)


class TestCostModel:
    def test_empty_counts_cost_nothing(self, node):
        cm = CostModel(node)
        bd = cm.compute_time(AccessCounts(), ComputeContext(threads=8))
        assert bd.total_ns == 0.0

    def test_more_threads_faster_latency_bound(self, node):
        cm = CostModel(node)
        counts = AccessCounts()
        counts.add_random(
            StructureAccess("inq", 512 * MB, Placement.LOCAL_SOCKET), 1e6
        )
        t1 = cm.compute_time(counts, ComputeContext(threads=1)).total_ns
        t8 = cm.compute_time(counts, ComputeContext(threads=8)).total_ns
        assert t1 / t8 == pytest.approx(8.0, rel=0.01)

    def test_local_beats_interleaved_for_latency_bound_work(self, node):
        """The core NUMA effect (Fig. 3): binding keeps random graph reads
        local and speeds up the computation phase."""
        cm = CostModel(node)
        local = AccessCounts()
        local.add_random(
            StructureAccess("graph", 2048 * MB, Placement.LOCAL_SOCKET), 1e6
        )
        inter = AccessCounts()
        inter.add_random(
            StructureAccess("graph", 2048 * MB, Placement.INTERLEAVED), 1e6
        )
        ctx = ComputeContext(threads=8, threads_sockets=1)
        ctx_span = ComputeContext(threads=8, threads_sockets=8)
        t_local = cm.compute_time(local, ctx).total_ns
        t_inter = cm.compute_time(inter, ctx_span).total_ns
        assert t_inter > 1.4 * t_local

    def test_streaming_bandwidth_bound(self, node):
        cm = CostModel(node)
        counts = AccessCounts()
        counts.add_stream(
            StructureAccess("adj", 1024 * MB, Placement.LOCAL_SOCKET),
            float(1024 * MB),
        )
        bd = cm.compute_time(counts, ComputeContext(threads=8))
        expected = 1024 * MB / node.socket.dram_bandwidth * 1e9
        assert bd.bandwidth_term_ns == pytest.approx(expected, rel=0.01)

    def test_cpu_term(self, node):
        cm = CostModel(node)
        counts = AccessCounts()
        counts.add_cpu(2.0e9)  # one second of one core's cycles
        bd = cm.compute_time(counts, ComputeContext(threads=1))
        assert bd.cpu_term_ns == pytest.approx(1e9)

    def test_counts_validation(self):
        counts = AccessCounts()
        s = StructureAccess("x", 1.0, Placement.LOCAL_SOCKET)
        with pytest.raises(ConfigError):
            counts.add_random(s, -1)
        with pytest.raises(ConfigError):
            counts.add_stream(s, -1)
        with pytest.raises(ConfigError):
            counts.add_cpu(-1)

    def test_context_validation(self):
        with pytest.raises(ConfigError):
            ComputeContext(threads=0)
        cm = CostModel(x7550_node())
        with pytest.raises(ConfigError):
            cm.compute_time(
                AccessCounts(), ComputeContext(threads=1, threads_sockets=9)
            )
