"""The cnative backend's build machinery and graceful degradation.

The equivalence suite (test_kernel_backends.py) already pins the
*kernels* whenever this machine has a toolchain; this file pins the
machinery around them: compiler discovery, the hashed on-disk cache,
corrupted-cache recovery, and — most importantly — that a missing or
broken toolchain degrades resolution to ``activeset`` with a structured
warning instead of breaking any run (tier-1 must pass identically with
and without a compiler).
"""

import io
import json

import pytest

from repro.core import BFSConfig, BFSEngine
from repro.core.kernels import CNativeBackend, get_backend, resolve_backend
from repro.core.kernels import base as kernels_base
from repro.core.kernels.cnative import build
from repro.graph import rmat_graph
from repro.machine import paper_cluster
from repro.obs.log import setup_logging


@pytest.fixture
def fresh_probe(monkeypatch, tmp_path):
    """Isolated build state: private cache dir, forgotten probe memo,
    re-armed fallback warning.  Restores the process-wide memo (and the
    default logging setup) afterwards so later tests re-probe cleanly."""
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
    monkeypatch.setattr(kernels_base, "_WARNED", set())
    build.reset()
    yield
    build.reset()
    setup_logging()


def _toolchain_or_skip():
    ok, reason = build.availability()
    if not ok:
        pytest.skip(f"no usable C toolchain here: {reason}")


def _plant_corrupt_entry(monkeypatch, tmp_path):
    """Plant a garbage cache entry *before* anything is loaded, the way a
    truncated copy from a crashed earlier run would appear.  (Corrupting
    after a successful load can't exercise the rebuild path: dlopen
    memoizes by pathname and would hand back the cached handle.)

    The toolchain check is a trial build in a scratch cache dir — a
    compiler that merely *exists* isn't enough (``CC=/bin/false``), and
    probing in the real cache dir would load the good library at the
    very path the test needs to see corrupted first.
    """
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "probe"))
    ok, reason = build.availability()
    build.reset()
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
    if not ok:
        pytest.skip(f"no usable C toolchain here: {reason}")
    path = build.library_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"this is not a shared library")
    return path


class TestCompilerProbe:
    def test_cc_env_var_wins(self, fresh_probe, monkeypatch):
        monkeypatch.setenv("CC", "/bin/false -extra -flags")
        assert build.find_compiler() == ["/bin/false", "-extra", "-flags"]

    def test_unresolvable_cc_means_no_compiler(self, fresh_probe, monkeypatch):
        monkeypatch.setenv("CC", "/no/such/compiler-xyz")
        assert build.find_compiler() is None

    def test_empty_path_probe_finds_nothing(self, fresh_probe, monkeypatch):
        monkeypatch.delenv("CC", raising=False)
        monkeypatch.setenv("PATH", "")
        assert build.find_compiler() is None
        ok, reason = build.availability()
        assert not ok
        assert "no C compiler" in reason

    def test_library_path_keyed_by_compiler(self, fresh_probe):
        a = build.library_path(["gcc"])
        b = build.library_path(["clang"])
        assert a is not None and b is not None and a != b
        assert a.parent == build.cache_dir()


class TestGracefulDegradation:
    def test_broken_cc_falls_back_with_structured_warning(
        self, fresh_probe, monkeypatch
    ):
        monkeypatch.setenv("CC", "/bin/false")
        stream = io.StringIO()
        setup_logging(level="info", fmt="json", stream=stream)

        backend = get_backend("cnative")
        assert backend.name == "activeset"

        lines = [ln for ln in stream.getvalue().splitlines() if ln.strip()]
        assert len(lines) == 1
        doc = json.loads(lines[0])
        assert doc["level"] == "warning"
        assert doc["logger"] == "repro.kernels"
        assert doc["backend"] == "cnative"
        assert doc["fallback"] == "activeset"
        assert doc["reason"]

        # The warning fires once per process, not once per resolution.
        assert get_backend("cnative").name == "activeset"
        assert stream.getvalue().splitlines() == lines

    def test_engine_runs_on_fallback(self, fresh_probe, monkeypatch):
        monkeypatch.setenv("CC", "/bin/false")
        graph = rmat_graph(scale=10, edgefactor=8, seed=1)
        engine = BFSEngine(
            graph, paper_cluster(nodes=2), BFSConfig(kernel="cnative")
        )
        assert engine.kernel.name == "activeset"
        result = engine.run(0)
        assert result.visited > 0

    def test_env_var_selection_falls_back(self, fresh_probe, monkeypatch):
        monkeypatch.setenv("CC", "/bin/false")
        monkeypatch.setenv("REPRO_KERNEL", "cnative")
        assert resolve_backend(None).name == "activeset"

    def test_config_knobs_survive_the_fallback(self, fresh_probe, monkeypatch):
        monkeypatch.setenv("CC", "/bin/false")
        backend = resolve_backend(BFSConfig(kernel="cnative", kernel_chunk=7))
        assert backend.name == "activeset"
        assert backend.chunk == 7

    def test_direct_load_raises_typed_error(self, fresh_probe, monkeypatch):
        monkeypatch.setenv("CC", "/bin/false")
        with pytest.raises(build.NativeBuildError, match="exited|failed"):
            build.load_library()
        # The failure is memoized: availability() reports it without
        # re-running the compiler.
        ok, reason = build.availability()
        assert not ok and reason


class TestCacheLifecycle:
    def test_corrupted_cache_entry_is_rebuilt(
        self, fresh_probe, monkeypatch, tmp_path
    ):
        path = _plant_corrupt_entry(monkeypatch, tmp_path)
        ok, reason = build.availability()
        assert ok, reason
        assert path.exists() and path.read_bytes()[:4] == b"\x7fELF"

    def test_cache_hit_skips_recompilation(self, fresh_probe):
        _toolchain_or_skip()
        path = build.library_path()
        stamp = path.stat().st_mtime_ns
        build.reset()
        ok, _ = build.availability()
        assert ok
        assert path.stat().st_mtime_ns == stamp

    def test_scan_works_after_rebuild(self, fresh_probe, monkeypatch, tmp_path):
        _plant_corrupt_entry(monkeypatch, tmp_path)
        backend = get_backend("cnative")
        assert isinstance(backend, CNativeBackend)
        graph = rmat_graph(scale=10, edgefactor=8, seed=2)
        result = BFSEngine(
            graph, paper_cluster(nodes=1), BFSConfig(kernel="cnative")
        ).run(0)
        assert result.visited > 0
