"""Checkpoint/restore round-trip guarantees.

A crash at *any* level, under *any* kernel backend and frontier codec,
with checkpoints living in memory or on disk, must resume to the exact
fault-free run: bit-identical parent tree, identical level counts,
identical simulated nanoseconds.  These tests sweep that matrix and pin
the on-disk ``.npz`` format round trip.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import BFSConfig
from repro.core.engine import BFSEngine
from repro.errors import CheckpointError
from repro.faults import (
    BFSCheckpoint,
    DiskCheckpointStore,
    FaultPlan,
    MemoryCheckpointStore,
    RankCrash,
    ResilienceConfig,
)
from repro.graph.rmat import rmat_graph
from repro.machine.spec import paper_cluster

SCALE = 11
ROOT = 1

KERNELS = ("reference", "activeset")
CODECS = ("raw", "sieve")


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(SCALE, seed=5)


def _config(kernel: str, codec: str) -> BFSConfig:
    cfg = BFSConfig.granularity_variant()
    return replace(
        cfg, kernel=kernel, comm=replace(cfg.comm, codec=codec)
    )


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("codec", CODECS)
def test_crash_at_every_level_resumes_bit_identically(
    graph, kernel, codec, tmp_path
):
    cluster = paper_cluster(nodes=2)
    config = _config(kernel, codec)
    baseline = BFSEngine(graph, cluster, config).run(ROOT)
    assert baseline.levels >= 3  # the sweep must actually cover levels
    for level in range(baseline.levels):
        plan = FaultPlan(seed=0, crashes=(RankCrash(rank=2, level=level),))
        store = DiskCheckpointStore(tmp_path / f"{kernel}-{codec}-{level}")
        result = BFSEngine(
            graph, cluster, config,
            faults=plan,
            resilience=ResilienceConfig(store=store),
        ).run(ROOT)
        assert np.array_equal(result.parent, baseline.parent), (
            kernel, codec, level,
        )
        assert result.levels == baseline.levels
        assert result.timing.total_ns == baseline.timing.total_ns
        assert result.recovery.rollbacks == 1
        assert result.recovery.replayed_levels == (level,)


@pytest.mark.parametrize("store_kind", ["memory", "disk"])
def test_sparse_checkpoint_cadence(graph, store_kind, tmp_path):
    """checkpoint_every=2: a crash can lose several levels, all replayed."""
    cluster = paper_cluster(nodes=2)
    config = _config("activeset", "raw")
    baseline = BFSEngine(graph, cluster, config).run(ROOT)
    crash_level = 3
    assert baseline.levels > crash_level
    store = (
        MemoryCheckpointStore()
        if store_kind == "memory"
        else DiskCheckpointStore(tmp_path / "sparse")
    )
    plan = FaultPlan(seed=0, crashes=(RankCrash(rank=0, level=crash_level),))
    result = BFSEngine(
        graph, cluster, config,
        faults=plan,
        resilience=ResilienceConfig(checkpoint_every=2, store=store),
    ).run(ROOT)
    assert np.array_equal(result.parent, baseline.parent)
    assert result.timing.total_ns == baseline.timing.total_ns
    # crash at 3, last snapshot at 2 -> levels 2 and 3 were lost
    assert result.recovery.replayed_levels == (2, 3)


def test_checkpoint_npz_round_trip(tmp_path):
    rng = np.random.default_rng(0)
    ckpt = BFSCheckpoint(
        level=4,
        prev_direction="bottom_up",
        policy_direction="top_down",
        policy_finished_bottom_up=True,
        parents=[rng.integers(-1, 100, size=32).astype(np.int64)
                 for _ in range(3)],
        unexplored=[7, 0, 123],
        frontier_lists=[np.array([1, 5], dtype=np.int64),
                        np.zeros(0, dtype=np.int64),
                        np.array([9], dtype=np.int64)],
        visited_words=rng.integers(0, 2**63, size=6).astype(np.uint64),
    )
    path = tmp_path / "ckpt.npz"
    ckpt.save(path)
    loaded = BFSCheckpoint.load(path)
    assert loaded.level == ckpt.level
    assert loaded.prev_direction == ckpt.prev_direction
    assert loaded.policy_direction == ckpt.policy_direction
    assert loaded.policy_finished_bottom_up is True
    assert loaded.unexplored == ckpt.unexplored
    for a, b in zip(loaded.parents, ckpt.parents):
        assert np.array_equal(a, b)
    for a, b in zip(loaded.frontier_lists, ckpt.frontier_lists):
        assert np.array_equal(a, b)
    assert np.array_equal(loaded.visited_words, ckpt.visited_words)
    assert loaded.nbytes == ckpt.nbytes


def test_checkpoint_load_rejects_garbage(tmp_path):
    path = tmp_path / "bad.npz"
    path.write_bytes(b"not a zip archive at all")
    with pytest.raises(CheckpointError):
        BFSCheckpoint.load(path)


def test_disk_store_prunes_to_keep(tmp_path):
    store = DiskCheckpointStore(tmp_path, keep=2)
    for level in range(5):
        store.put(
            BFSCheckpoint(
                level=level,
                prev_direction=None,
                policy_direction="top_down",
                policy_finished_bottom_up=False,
                parents=[np.zeros(8, dtype=np.int64)],
                unexplored=[0],
                frontier_lists=[np.zeros(0, dtype=np.int64)],
                visited_words=None,
            )
        )
    remaining = sorted(p.name for p in tmp_path.glob("ckpt_level*.npz"))
    assert remaining == ["ckpt_level00003.npz", "ckpt_level00004.npz"]
    assert store.latest().level == 4
    store.clear()
    assert store.latest() is None


def test_memory_store_keeps_latest():
    store = MemoryCheckpointStore(keep=1)
    for level in range(3):
        store.put(
            BFSCheckpoint(
                level=level,
                prev_direction=None,
                policy_direction="top_down",
                policy_finished_bottom_up=False,
                parents=[np.zeros(8, dtype=np.int64)],
                unexplored=[0],
                frontier_lists=[np.zeros(0, dtype=np.int64)],
                visited_words=None,
            )
        )
    assert len(store) == 1
    assert store.latest().level == 2


def _small_checkpoint(level: int = 1) -> BFSCheckpoint:
    return BFSCheckpoint(
        level=level,
        prev_direction=None,
        policy_direction="top_down",
        policy_finished_bottom_up=False,
        parents=[np.arange(8, dtype=np.int64)],
        unexplored=[3],
        frontier_lists=[np.array([2, 4], dtype=np.int64)],
        visited_words=None,
    )


class TestCrashSafeSave:
    """A crash mid-write must leave the previous archive (or nothing),
    never a torn one."""

    def test_crash_mid_write_preserves_previous_checkpoint(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "ckpt.npz"
        _small_checkpoint(level=1).save(path)

        def torn_write(fh, **arrays):
            fh.write(b"PK\x03\x04 partial garbage")
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(np, "savez_compressed", torn_write)
        with pytest.raises(OSError):
            _small_checkpoint(level=2).save(path)
        monkeypatch.undo()
        # The original archive is intact and still loads...
        assert BFSCheckpoint.load(path).level == 1
        # ...and no temporary file is left behind.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.npz"]

    def test_crash_on_first_write_leaves_nothing(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "ckpt.npz"

        def torn_write(fh, **arrays):
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(np, "savez_compressed", torn_write)
        with pytest.raises(OSError):
            _small_checkpoint().save(path)
        assert list(tmp_path.iterdir()) == []

    def test_tmp_file_never_matches_the_store_glob(self, tmp_path):
        """The temporary name must miss DiskCheckpointStore's pruning
        glob, or a prune racing a save could delete the in-flight file."""
        tmp_name = "ckpt_level00001.npz.tmp.99999"  # another process's tmp
        (tmp_path / tmp_name).write_bytes(b"in flight")
        store = DiskCheckpointStore(tmp_path, keep=1)
        store.put(_small_checkpoint(level=1))
        assert (tmp_path / tmp_name).exists()

    def test_save_replaces_existing_atomically(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        _small_checkpoint(level=1).save(path)
        _small_checkpoint(level=2).save(path)
        assert BFSCheckpoint.load(path).level == 2
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.npz"]
