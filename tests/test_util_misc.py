"""Tests for stats helpers and table formatting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import (
    describe,
    format_bytes,
    format_si,
    format_table,
    format_time_ns,
    geometric_mean,
    harmonic_mean,
)


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_constant(self):
        assert harmonic_mean([5.0] * 7) == pytest.approx(5.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=1e6),
            min_size=1,
            max_size=30,
        )
    )
    def test_property_below_arithmetic_mean(self, values):
        hm = harmonic_mean(values)
        assert hm <= np.mean(values) + 1e-9
        assert min(values) - 1e-9 <= hm <= max(values) + 1e-9


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            geometric_mean([0.0])


class TestDescribe:
    def test_basic(self):
        s = describe([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == pytest.approx(2.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            describe([])


class TestFormatting:
    def test_si(self):
        assert format_si(39.2e9, "TEPS") == "39.20 GTEPS"
        assert format_si(0) == "0"
        assert format_si(12.0) == "12.00"

    def test_bytes(self):
        assert format_bytes(512 * 2**20) == "512.0 MiB"
        assert format_bytes(10) == "10 B"

    def test_time(self):
        assert format_time_ns(1.5e9) == "1.50 s"
        assert format_time_ns(2.5e6) == "2.50 ms"
        assert format_time_ns(3.0e3) == "3.00 us"
        assert format_time_ns(7.0) == "7.00 ns"

    def test_table_alignment(self):
        out = format_table(
            ["name", "value"],
            [["a", 1.5], ["bbbb", 20]],
            title="t",
        )
        lines = out.splitlines()
        assert lines[0] == "t"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])
