"""Tests for the experiment runners: every table/figure must produce
well-formed output, and the qualitative paper claims (DESIGN.md §4) must
hold at test-speed settings."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentSettings,
    get_experiment,
    run_experiment,
)
from repro.experiments import common as exp_common
from repro.experiments.cli import main as cli_main

FAST = ExperimentSettings(scale_offset=16, num_roots=2)


@pytest.fixture(scope="module")
def results():
    """Run every experiment once at fast settings and share the output."""
    return {eid: run_experiment(eid, FAST) for eid in EXPERIMENTS}


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        expected = {
            "table1",
            "fig03",
            "fig04",
            "fig06",
            "fig09",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "text_hybrid",
            "ext_modern",
        }
        assert set(EXPERIMENTS) == expected

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_paper_scale_mapping(self):
        assert exp_common.paper_scale_for_nodes(1) == 28
        assert exp_common.paper_scale_for_nodes(16) == 32
        with pytest.raises(ValueError):
            exp_common.paper_scale_for_nodes(3)


class TestWellFormed:
    def test_every_experiment_renders(self, results):
        for eid, res in results.items():
            text = res.to_text()
            assert res.title in text
            assert res.rows, eid
            for row in res.rows:
                assert len(row) == len(res.headers), eid

    def test_every_experiment_records_claims(self, results):
        for eid, res in results.items():
            assert res.claims, f"{eid} records no paper-vs-measured claims"

    def test_no_violated_claims(self, results):
        for eid, res in results.items():
            for name, (_paper, measured) in res.claims.items():
                assert "VIOLATED" not in measured, f"{eid}: {name}: {measured}"


class TestFigureClaims:
    def test_fig03_numa_bands(self, results):
        rows = {r[0]: r[2] for r in results["fig03"].rows}
        eight = rows["8 cores (1 socket, local)"]
        inter = rows["64 cores (8 sockets, interleave)"]
        bind = rows["64 cores (8 sockets, bind-to-socket)"]
        assert 5.0 < eight < 8.5  # paper: 6.98
        assert 1.5 < inter / eight < 4.0  # paper: 2.77
        assert 4.0 < bind / eight < 9.0  # paper: 6.31
        assert bind > inter

    def test_fig04_monotone_and_half(self, results):
        fractions = [r[2] for r in results["fig04"].rows]
        assert fractions == sorted(fractions)
        assert 0.4 < fractions[0] < 0.6  # 1 ppn ~ half of peak

    def test_fig09_stack_ordering(self, results):
        rows = {r[0]: r[1] for r in results["fig09"].rows}
        order = [
            "Original.ppn=1",
            "Original.ppn=8",
            "Share in_queue",
            "Share all",
            "Par allgather",
            "Granularity",
        ]
        teps = [rows[name] for name in order]
        assert teps == sorted(teps)
        overall = teps[-1] / teps[0]
        assert 1.8 < overall < 3.5  # paper: 2.44
        numa = teps[1] / teps[0]
        assert 1.3 < numa < 2.2  # paper: 1.53
        assert 15 < teps[-1] < 90  # paper: 39.2 GTEPS

    def test_fig10_policy_ordering(self, results):
        rows = {r[0]: r[1] for r in results["fig10"].rows}
        assert rows["ppn=8.bind-to-socket"] == max(rows.values())
        assert rows["ppn=1.interleave"] >= rows["ppn=1.noflag"]
        assert rows["ppn=8.noflag"] == min(rows.values())

    def test_fig11_binding_speeds_up_computation(self, results):
        rows = {r[0]: r for r in results["fig11"].rows}
        inter = rows["ppn=1.interleave"]
        bind = rows["ppn=8.bind-to-socket"]
        # bottom-up comp column index 3, top-down comp index 1
        assert bind[3] < inter[3]
        assert bind[1] < inter[1]

    def test_fig12_proportion_grows(self, results):
        props = [float(r[5].rstrip("%")) for r in results["fig12"].rows]
        assert props == sorted(props)
        assert props[-1] > 30  # paper: 54% at 8 nodes
        ratios = [r[4] for r in results["fig12"].rows[1:]]
        assert all(r > 1.5 for r in ratios)  # ppn8 comm >> ppn1 comm

    def test_fig13_each_optimization_cuts_comm(self, results):
        for row in results["fig13"].rows:
            series = row[2:]
            assert series[0] > series[1] > series[3]

    def test_fig14_proportion_reduction(self, results):
        last = results["fig14"].rows[-1]  # 8 nodes
        unopt = float(last[2].rstrip("%"))
        opt = float(last[5].rstrip("%"))
        assert unopt > 2.5 * opt  # paper: 54% -> 18%

    def test_fig15_weak_scaling(self, results):
        rows = results["fig15"].rows
        par = [r[6] for r in rows]
        # Optimized TEPS rises monotonically through 8 nodes.
        assert par[:4] == sorted(par[:4])
        # 16-node point grows less than 2x over 8 nodes (weak node dent).
        assert par[4] / par[3] < 2.0

    def test_fig16_granularity_shape(self, results):
        rows = {r[0]: r[1] for r in results["fig16"].rows}
        assert rows[256] > rows[64]  # paper: +10.2%
        assert rows[4096] < rows[64]
        best = max(rows, key=rows.get)
        assert best in (128, 256, 512)  # paper: 256

    def test_text_hybrid_dominates(self, results):
        rows = {r[0]: r[3] for r in results["text_hybrid"].rows}
        assert 8 < rows["pure top-down"] < 80  # paper: 27.3x
        assert 2 < rows["pure bottom-up"] < 15  # paper: 4.7x

    def test_table1_matches_paper(self, results):
        paper, measured = results["table1"].claims["total cores"]
        assert paper == measured == "1024"


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out and "table1" in out

    def test_unknown_experiment(self, capsys):
        assert cli_main(["fig99"]) == 2

    def test_run_one(self, capsys):
        assert cli_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_run_fig04_quick(self, capsys):
        assert cli_main(["fig04", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "paper-vs-measured" in out
