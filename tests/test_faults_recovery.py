"""End-to-end fault-tolerance contract of the BFS engine.

The acceptance bar of the robustness work: every injected-fault run must
either terminate *recovered* — parent tree bit-identical to the
fault-free baseline and passing the Graph500 validator — or abort with a
typed, context-carrying :class:`~repro.errors.FaultError`.  Never a
silently wrong answer, never a raw traceback.  And everything must be
deterministic: same plan seed, same recovered result, same simulated
seconds.
"""

import numpy as np
import pytest

from repro.core.api import run_bfs
from repro.core.config import BFSConfig
from repro.core.engine import BFSEngine
from repro.core.validate import validate_parent_tree
from repro.errors import FaultError
from repro.faults import (
    FaultPlan,
    LinkDegradation,
    PayloadCorruption,
    RankCrash,
    ResilienceConfig,
    StragglerSlowdown,
    TransientFaults,
    available_scenarios,
)
from repro.graph.rmat import rmat_graph
from repro.machine.spec import paper_cluster

SCALE = 12
ROOT = 1


@pytest.fixture(scope="module")
def workload():
    graph = rmat_graph(SCALE, seed=3)
    cluster = paper_cluster(nodes=2)
    config = BFSConfig.granularity_variant()
    baseline_engine = BFSEngine(graph, cluster, config)
    baseline = baseline_engine.run(ROOT)
    return graph, cluster, config, baseline_engine, baseline


@pytest.mark.parametrize("name", available_scenarios())
def test_every_scenario_recovers_bit_identically(workload, name):
    graph, cluster, config, base_engine, baseline = workload
    plan = FaultPlan.scenario(
        name, seed=7,
        num_ranks=base_engine.mapping.num_ranks,
        nodes=cluster.nodes,
        depth=baseline.levels,
    )
    result = BFSEngine(graph, cluster, config, faults=plan).run(ROOT)
    assert np.array_equal(result.parent, baseline.parent)
    validate_parent_tree(graph, ROOT, result.parent)
    assert result.levels == baseline.levels
    # the functional pricing stays fault-free-equivalent for
    # non-pricing faults; recovery overhead is carried separately
    if "straggler" not in name and "link" not in name:
        assert result.timing.total_ns == baseline.timing.total_ns
    assert result.recovery is not None
    assert result.seconds >= baseline.seconds


@pytest.mark.parametrize("name", available_scenarios())
def test_every_scenario_is_deterministic(workload, name):
    graph, cluster, config, base_engine, baseline = workload
    kwargs = dict(
        num_ranks=base_engine.mapping.num_ranks,
        nodes=cluster.nodes,
        depth=baseline.levels,
    )
    a = BFSEngine(
        graph, cluster, config, faults=FaultPlan.scenario(name, 7, **kwargs)
    ).run(ROOT)
    b = BFSEngine(
        graph, cluster, config, faults=FaultPlan.scenario(name, 7, **kwargs)
    ).run(ROOT)
    assert np.array_equal(a.parent, b.parent)
    assert a.seconds == b.seconds
    assert a.recovery.as_dict() == b.recovery.as_dict()


def test_crash_recovery_charges_overhead(workload):
    graph, cluster, config, base_engine, baseline = workload
    plan = FaultPlan(seed=0, crashes=(RankCrash(rank=1, level=1),))
    result = BFSEngine(graph, cluster, config, faults=plan).run(ROOT)
    rec = result.recovery
    assert rec.rollbacks == 1
    assert rec.replayed_levels == (1,)
    assert rec.overhead_ns > 0
    assert result.seconds == pytest.approx(
        baseline.seconds + rec.overhead_seconds
    )
    assert any(e["kind"] == "crash" for e in rec.fault_events)


def test_transient_retries_are_priced(workload):
    graph, cluster, config, base_engine, baseline = workload
    plan = FaultPlan(seed=1, transients=(TransientFaults(probability=0.3),))
    result = BFSEngine(graph, cluster, config, faults=plan).run(ROOT)
    rec = result.recovery
    if rec.retries:  # the seeded schedule fires at this seed/scale
        assert rec.overhead_ns > 0
        assert any(a["action"] == "retry" for a in rec.actions)
    assert np.array_equal(result.parent, baseline.parent)


def test_corruption_detected_and_rolled_back(workload):
    graph, cluster, config, base_engine, baseline = workload
    plan = FaultPlan(
        seed=2, corruptions=(PayloadCorruption(level=2, bit_flips=3),)
    )
    result = BFSEngine(graph, cluster, config, faults=plan).run(ROOT)
    rec = result.recovery
    assert rec.rollbacks >= 1
    assert any(e["kind"] == "corruption" for e in rec.fault_events)
    assert np.array_equal(result.parent, baseline.parent)


def test_straggler_and_link_faults_only_degrade_pricing(workload):
    graph, cluster, config, base_engine, baseline = workload
    for plan in (
        FaultPlan(seed=0, stragglers=(StragglerSlowdown(rank=0, factor=4.0),)),
        FaultPlan(seed=0, links=(LinkDegradation(node=1, factor=0.25),)),
    ):
        result = BFSEngine(graph, cluster, config, faults=plan).run(ROOT)
        assert np.array_equal(result.parent, baseline.parent)
        assert result.recovery.rollbacks == 0
        assert result.timing.total_ns > baseline.timing.total_ns


def test_retry_exhaustion_aborts_with_typed_error(workload):
    graph, cluster, config, _, _ = workload
    plan = FaultPlan(
        seed=0, transients=(TransientFaults(probability=0.9999),)
    )
    engine = BFSEngine(
        graph, cluster, config, faults=plan,
        resilience=ResilienceConfig(max_attempts=3),
    )
    with pytest.raises(FaultError) as ei:
        engine.run(ROOT)
    d = ei.value.to_dict()
    assert d["type"] == "FaultError"
    assert d["context"]["attempts"] == 3
    assert d["context"]["collective"] in ("allgather", "alltoallv")


def test_crash_without_checkpoint_aborts_with_typed_error(workload):
    graph, cluster, config, _, _ = workload
    plan = FaultPlan(seed=0, crashes=(RankCrash(rank=0, level=1),))
    engine = BFSEngine(
        graph, cluster, config, faults=plan,
        resilience=ResilienceConfig(checkpoint_every=0),
    )
    with pytest.raises(FaultError) as ei:
        engine.run(ROOT)
    ctx = ei.value.to_dict()["context"]
    assert ctx["kind"] == "crash"
    assert ctx["rank"] == 0


def test_fault_free_run_is_untouched(workload):
    graph, cluster, config, base_engine, baseline = workload
    assert base_engine.injector is None
    assert base_engine.comm.injector is None
    assert baseline.recovery is None
    # an empty plan never arms the machinery either
    engine = BFSEngine(graph, cluster, config, faults=FaultPlan(seed=1))
    assert engine.injector is None
    assert engine.comm.injector is None


def test_run_bfs_passthrough(workload):
    graph, _, _, _, _ = workload
    plan = FaultPlan(seed=0, crashes=(RankCrash(rank=0, level=1),))
    result = run_bfs(
        graph, ROOT, cluster=paper_cluster(nodes=2),
        config=BFSConfig.granularity_variant(),
        validate=True, faults=plan,
    )
    assert result.recovery is not None and result.recovery.rollbacks == 1


def test_recovery_metrics_and_spans_emitted(workload):
    graph, cluster, config, base_engine, baseline = workload
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import SpanTracer

    registry = MetricsRegistry()
    tracer = SpanTracer(metrics=registry)
    plan = FaultPlan(seed=0, crashes=(RankCrash(rank=1, level=1),))
    result = BFSEngine(
        graph, cluster, config, tracer=tracer, metrics=registry, faults=plan
    ).run(ROOT)
    assert result.recovery.rollbacks == 1
    snap = registry.as_dict()["counters"]
    assert snap.get("fault.injected_total{kind=crash}") == 1
    assert snap.get("recovery.rollbacks_total{kind=crash}") == 1
    assert snap.get("recovery.checkpoints_total", 0) >= 1
    names = {s.name for s in tracer.spans}
    assert "recovery.checkpoint" in names
    assert "recovery.rollback" in names
