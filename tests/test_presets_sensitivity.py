"""Tests for hardware presets, the sensitivity tooling and the official
Graph500 output block."""

import pytest

from repro.core import BFSConfig, run_graph500
from repro.errors import ConfigError
from repro.graph import rmat_graph
from repro.machine import paper_cluster
from repro.machine.presets import (
    commodity_cluster,
    commodity_dual_socket_node,
    fat_memory_node,
    modern_cluster,
    modern_epyc_like_node,
    quad_socket_cluster,
)
from repro.model.analytic import analytic_graph500
from repro.model.sensitivity import (
    CALIBRATION_CONSTANTS,
    evaluate_claims,
    perturb,
    sensitivity_sweep,
)


class TestPresets:
    def test_presets_construct_and_validate(self):
        assert commodity_dual_socket_node().sockets == 2
        assert quad_socket_cluster().total_sockets == 128
        assert fat_memory_node().socket.dram_bandwidth == pytest.approx(34.2e9)
        assert modern_epyc_like_node().cores == 128

    def test_presets_run_bfs(self):
        """Every preset must be a legal machine for the analytic engine."""
        for cluster in (
            commodity_cluster(nodes=8),
            quad_socket_cluster(nodes=8),
            modern_cluster(nodes=4),
        ):
            ppn = cluster.node.sockets
            res = analytic_graph500(
                cluster, BFSConfig(ppn=ppn), 28
            )
            assert res.teps > 0

    def test_modern_node_is_faster(self):
        """A decade of hardware should beat the X7550 platform at the
        same node count."""
        old = analytic_graph500(
            paper_cluster(nodes=4), BFSConfig.original_ppn8(), 28
        )
        new = analytic_graph500(
            modern_cluster(nodes=4), BFSConfig(ppn=2), 28
        )
        assert new.teps > 2 * old.teps

    def test_fat_memory_helps(self):
        """Populating all DDR3 channels (2x bandwidth) cannot hurt."""
        import dataclasses as dc

        thin = paper_cluster(nodes=4)
        fat = dc.replace(thin, node=fat_memory_node())
        t_thin = analytic_graph500(thin, BFSConfig.original_ppn8(), 28)
        t_fat = analytic_graph500(fat, BFSConfig.original_ppn8(), 28)
        assert t_fat.seconds <= t_thin.seconds * 1.001


class TestSensitivity:
    def test_perturb_changes_constant(self):
        base = paper_cluster(nodes=2)
        hot = perturb(base, "dram_latency_ns", 2.0)
        assert hot.node.socket.dram_latency_ns == pytest.approx(
            base.node.socket.dram_latency_ns * 2
        )

    def test_perturb_validation(self):
        base = paper_cluster(nodes=2)
        with pytest.raises(ConfigError):
            perturb(base, "nonsense", 1.5)
        with pytest.raises(ConfigError):
            perturb(base, "mlp", 0.0)

    def test_all_constants_perturbable(self):
        base = paper_cluster(nodes=2)
        for name in CALIBRATION_CONSTANTS:
            perturbed = perturb(base, name, 1.3)
            assert perturbed != base

    def test_claims_hold_at_default(self):
        outcome = evaluate_claims(paper_cluster(nodes=16))
        assert outcome.claims_hold
        assert 1.2 < outcome.numa_speedup < 2.5
        assert 1.8 < outcome.overall_speedup < 3.5

    def test_sweep_structure(self):
        sweep = sensitivity_sweep(factors=(1.0,), scale=28, nodes=4)
        assert set(sweep) == set(CALIBRATION_CONSTANTS)
        for outcomes in sweep.values():
            assert set(outcomes) == {1.0}


class TestGraph500Output:
    def test_official_block(self):
        graph = rmat_graph(scale=11, seed=6)
        cluster = paper_cluster(nodes=2)
        result = run_graph500(
            graph, cluster, BFSConfig.original_ppn8(), num_roots=4, seed=1
        )
        block = result.graph500_output(graph)
        assert "SCALE:" in block and "11" in block
        assert "NBFS:" in block and "4" in block
        assert "harmonic_mean_TEPS:" in block
        # Quartile ordering.
        import re

        vals = {
            k: float(v)
            for k, v in re.findall(r"(\w+_TEPS):\s+(\S+)", block)
        }
        assert (
            vals["min_TEPS"]
            <= vals["firstquartile_TEPS"]
            <= vals["median_TEPS"]
            <= vals["thirdquartile_TEPS"]
            <= vals["max_TEPS"]
        )
        assert vals["min_TEPS"] <= vals["harmonic_mean_TEPS"] <= vals["max_TEPS"]

    def test_teps_statistics(self):
        graph = rmat_graph(scale=11, seed=6)
        result = run_graph500(
            graph, paper_cluster(nodes=2), BFSConfig.original_ppn8(),
            num_roots=3, seed=2,
        )
        stats = result.teps_statistics()
        assert stats.n == 3
        assert stats.minimum <= stats.median <= stats.maximum
