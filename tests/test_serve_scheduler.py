"""The serving layer: sessions, the batch scheduler, and the load gen."""

import asyncio
import threading

import numpy as np
import pytest

from repro.core.config import BFSConfig, CommConfig
from repro.core.engine import BFSEngine
from repro.core.prepared import PreparedGraphCache
from repro.errors import ConfigError, GraphError
from repro.graph.rmat import rmat_graph
from repro.machine.spec import paper_cluster
from repro.obs.metrics import MetricsRegistry
from repro.serve.loadgen import pick_root_pool, run_load
from repro.serve.scheduler import BatchScheduler, ResultCache
from repro.serve.session import BFSService


class StubSession:
    """Engine-free session double with a plain run_batch(sources).

    ``release`` (a threading.Event) makes every batch block inside the
    executor until the test sets it — the knob the concurrency-edge
    tests use to observe the scheduler mid-batch.
    """

    digest = "stub-digest"
    config = "stub-config"

    def __init__(self, release: threading.Event | None = None) -> None:
        self.release = release
        self.batches: list[list[int]] = []

    def run_batch(self, sources):
        if self.release is not None:
            assert self.release.wait(timeout=30)
        self.batches.append(list(sources))
        return [("result", s) for s in sources]

SCALE = 10


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=SCALE, edgefactor=8, seed=5)


@pytest.fixture(scope="module")
def cluster():
    return paper_cluster(nodes=1)


@pytest.fixture()
def service(cluster):
    return BFSService(cache=PreparedGraphCache(maxsize=4), cluster=cluster)


@pytest.fixture()
def session(service, graph):
    return service.session(graph)


def test_session_shares_prepared_state(service, graph, cluster):
    a = service.session(graph)
    b = service.session(graph, config=BFSConfig(comm=CommConfig(codec="raw")))
    assert a.prepared is b.prepared
    stats = service.prepared_stats()
    assert stats["misses"] == 1 and stats["hits"] == 1


def test_session_single_query_matches_engine(session, graph, cluster):
    root = int(np.argmax(graph.degrees()))
    served = session.run(root)
    direct = BFSEngine(graph, cluster, session.config).run(root)
    assert np.array_equal(served.parent, direct.parent)
    assert served.seconds == direct.seconds


class TestResultCache:
    def test_lru_semantics(self):
        cache = ResultCache(maxsize=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refreshes 'a'
        cache.put(("c",), 3)  # evicts 'b'
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1
        assert len(cache) == 2
        stats = cache.stats()
        assert stats["hits"] == 2 and stats["misses"] == 1

    def test_invalid_maxsize(self):
        with pytest.raises(ConfigError):
            ResultCache(maxsize=0)

    def test_stats_at_zero_lookups(self):
        stats = ResultCache().stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0
        assert stats["lookups"] == 0
        assert stats["hit_rate"] == 0.0  # not a division error

    def test_lookups_is_the_hit_rate_denominator(self):
        cache = ResultCache(maxsize=2)
        cache.put(("a",), 1)
        cache.get(("a",))
        cache.get(("b",))
        stats = cache.stats()
        assert stats["lookups"] == stats["hits"] + stats["misses"] == 2
        assert stats["hit_rate"] == 0.5

    def test_prepared_cache_stats_at_zero_lookups(self):
        stats = PreparedGraphCache().stats()
        assert stats["lookups"] == 0
        assert stats["hit_rate"] == 0.0


class TestScheduler:
    def test_submit_requires_running_scheduler(self, session):
        scheduler = BatchScheduler(session)
        with pytest.raises(ConfigError, match="not running"):
            asyncio.run(scheduler.submit(0))

    def test_max_batch_validated(self, session):
        with pytest.raises(ConfigError, match="max_batch"):
            BatchScheduler(session, max_batch=65)
        with pytest.raises(ConfigError, match="max_batch"):
            BatchScheduler(session, max_batch=0)
        with pytest.raises(ConfigError, match="max_wait"):
            BatchScheduler(session, max_wait_ms=-1)

    def test_concurrent_burst_is_batched_and_identical(
        self, session, graph, cluster
    ):
        rng = np.random.default_rng(8)
        roots = [int(r) for r in rng.integers(0, graph.num_vertices, 12)]
        scheduler = BatchScheduler(session, max_batch=16, max_wait_ms=20.0)

        async def burst():
            async with scheduler:
                return await asyncio.gather(
                    *(scheduler.submit(r) for r in roots)
                )

        results = asyncio.run(burst())
        engine = BFSEngine(graph, cluster, session.config)
        for root, res in zip(roots, results):
            seq = engine.run(root)
            assert np.array_equal(seq.parent, res.parent), root
            assert seq.seconds == res.seconds, root
        stats = scheduler.stats()
        assert stats["queries"] == len(roots)
        assert stats["batches"] < len(roots)  # actually coalesced work
        assert stats["batched_queries"] == len(roots)

    def test_duplicate_sources_coalesce_to_one_lane(self, session):
        root = 1
        scheduler = BatchScheduler(
            session, max_batch=8, max_wait_ms=50.0, result_cache=None
        )

        async def dupes():
            async with scheduler:
                return await asyncio.gather(
                    *(scheduler.submit(root) for _ in range(6))
                )

        results = asyncio.run(dupes())
        assert all(r is results[0] for r in results)  # one shared answer
        assert scheduler.coalesced >= 5

    def test_result_cache_serves_repeats(self, session):
        scheduler = BatchScheduler(session, max_batch=4, max_wait_ms=1.0)

        async def twice():
            async with scheduler:
                first = await scheduler.submit(2)
                second = await scheduler.submit(2)
                return first, second

        first, second = asyncio.run(twice())
        assert second is first
        assert scheduler.results.stats()["hits"] == 1
        hits = scheduler.metrics.counter("serve.result_cache.hits")
        assert hits.value == 1.0

    def test_query_errors_propagate_to_waiters(self, session, graph):
        scheduler = BatchScheduler(session, max_batch=4, max_wait_ms=10.0)

        async def bad():
            async with scheduler:
                return await asyncio.gather(
                    scheduler.submit(graph.num_vertices + 3),
                    scheduler.submit(graph.num_vertices + 4),
                    return_exceptions=True,
                )

        results = asyncio.run(bad())
        assert all(isinstance(r, GraphError) for r in results)

    def test_latency_histogram_is_recorded(self, session):
        scheduler = BatchScheduler(session, max_batch=2, max_wait_ms=1.0)

        async def go():
            async with scheduler:
                await asyncio.gather(*(scheduler.submit(i) for i in (3, 4)))

        asyncio.run(go())
        hist = scheduler.metrics.histogram("serve.latency_ms")
        assert hist.count == 2
        assert hist.max > 0.0


class TestSchedulerConcurrencyEdges:
    """Lifecycle and backpressure edges, observed via a stub session."""

    def test_submit_after_stop_raises_cleanly(self):
        async def go():
            scheduler = BatchScheduler(StubSession(), result_cache=None)
            await scheduler.start()
            assert await scheduler.submit(1) == ("result", 1)
            await scheduler.stop()
            with pytest.raises(ConfigError, match="not running"):
                await scheduler.submit(2)
            # A stopped scheduler is restartable.
            await scheduler.start()
            assert await scheduler.submit(3) == ("result", 3)
            await scheduler.stop()

        asyncio.run(go())

    def test_queue_depth_gauge_rises_and_falls_under_burst(self):
        release = threading.Event()
        registry = MetricsRegistry()
        scheduler = BatchScheduler(
            StubSession(release=release),
            max_batch=2,
            max_wait_ms=0.0,
            result_cache=None,
            metrics=registry,
        )

        async def go():
            async with scheduler:
                tasks = [
                    asyncio.ensure_future(scheduler.submit(i))
                    for i in range(6)
                ]
                await asyncio.sleep(0.15)  # first batch blocked in executor
                assert scheduler.in_flight == 1
                assert (
                    registry.gauge("serve.inflight_batches").value == 1.0
                )
                depth = scheduler.queue_depth
                gauge = registry.gauge("serve.queue_depth").value
                release.set()
                await asyncio.gather(*tasks)
                return depth, gauge

        depth, gauge = asyncio.run(go())
        assert depth >= 1  # burst outran the blocked dispatcher
        assert gauge >= 1.0
        assert scheduler.queue_depth == 0
        assert registry.gauge("serve.queue_depth").value == 0.0
        assert scheduler.in_flight == 0
        stats = scheduler.stats()
        assert stats["queue_depth"] == 0 and stats["in_flight"] == 0

    def test_queued_work_coalesces_while_engine_is_busy(self):
        release = threading.Event()
        stub = StubSession(release=release)
        scheduler = BatchScheduler(
            stub, max_batch=8, max_wait_ms=0.0, result_cache=None
        )

        async def go():
            async with scheduler:
                first = asyncio.ensure_future(scheduler.submit(0))
                await asyncio.sleep(0.1)  # batch [0] picked up, blocked
                rest = [
                    asyncio.ensure_future(scheduler.submit(i))
                    for i in (1, 2, 3, 4)
                ]
                await asyncio.sleep(0.05)  # all four sit in the queue
                release.set()
                await asyncio.gather(first, *rest)

        asyncio.run(go())
        # Everything queued behind the slow batch rides one batch even
        # with max_wait 0 — already-queued work joins without waiting.
        assert stub.batches[0] == [0]
        assert sorted(stub.batches[1]) == [1, 2, 3, 4]
        assert scheduler.batches == 2

    def test_max_wait_holds_a_batch_open(self):
        stub = StubSession()
        scheduler = BatchScheduler(
            stub, max_batch=8, max_wait_ms=250.0, result_cache=None
        )

        async def go():
            async with scheduler:
                a = asyncio.ensure_future(scheduler.submit(1))
                await asyncio.sleep(0.05)  # well inside max_wait
                b = asyncio.ensure_future(scheduler.submit(2))
                await asyncio.gather(a, b)

        asyncio.run(go())
        assert scheduler.batches == 1
        assert sorted(stub.batches[0]) == [1, 2]

    def test_zero_max_wait_dispatches_immediately(self):
        stub = StubSession()
        scheduler = BatchScheduler(
            stub, max_batch=8, max_wait_ms=0.0, result_cache=None
        )

        async def go():
            async with scheduler:
                await scheduler.submit(1)
                await scheduler.submit(2)

        asyncio.run(go())
        assert scheduler.batches == 2

    def test_health_transitions(self):
        async def go():
            scheduler = BatchScheduler(StubSession(), result_cache=None)
            assert scheduler.health() == (True, {"state": "idle"})
            await scheduler.start()
            ok, detail = scheduler.health()
            assert ok and detail["state"] == "running"
            assert detail["queue_depth"] == 0
            await scheduler.stop()
            assert scheduler.health() == (True, {"state": "idle"})

        asyncio.run(go())

    def test_health_reports_crashed_dispatcher(self):
        async def go():
            scheduler = BatchScheduler(StubSession(), result_cache=None)
            await scheduler.start()

            async def boom(loop, batch):
                raise RuntimeError("dispatcher bug")

            scheduler._run_batch = boom
            pending = asyncio.ensure_future(scheduler.submit(1))
            await asyncio.sleep(0.1)
            ok, detail = scheduler.health()
            assert not ok
            assert detail["state"] == "crashed"
            assert "dispatcher bug" in detail["error"]
            pending.cancel()
            with pytest.raises(asyncio.CancelledError):
                await pending

        asyncio.run(go())


class TestLoadGen:
    def test_pick_root_pool_excludes_zero_degree(self, graph):
        pool = pick_root_pool(graph, 32, seed=1)
        assert pool.size == 32
        assert (graph.degrees()[pool] > 0).all()

    def test_pool_validation(self, graph):
        with pytest.raises(ConfigError):
            pick_root_pool(graph, 0)

    def test_run_load_burst(self, session):
        result = run_load(
            session,
            queries=20,
            root_pool=4,
            seed=2,
            max_batch=8,
            max_wait_ms=5.0,
        )
        assert result.queries == 20
        assert result.wall_seconds > 0
        assert result.qps_achieved > 0
        assert result.latency_ms["count"] == 20
        assert result.latency_ms["p99"] >= result.latency_ms["p50"]
        assert result.distinct_roots <= 4
        doc = result.as_dict()
        assert doc["qps_offered"] is None  # inf burst serializes as None
        assert doc["scheduler"]["queries"] == 20

    def test_run_load_explicit_roots_and_rate(self, session):
        roots = [1, 2, 3, 4]
        result = run_load(
            session, qps=2000.0, roots=roots, max_batch=4, result_cache=None
        )
        assert result.queries == 4
        assert result.distinct_roots == 4
        assert result.as_dict()["qps_offered"] == 2000.0

    def test_run_load_validation(self, session):
        with pytest.raises(ConfigError):
            run_load(session, queries=0)
        with pytest.raises(ConfigError):
            run_load(session, qps=0.0)
