"""Tests for the ``repro-ledger`` CLI (log / list / show / check / dash)."""

import json

import pytest

from repro.obs.ledger import LedgerRecord, RunLedger
from repro.obs.ledgercli import main


def _append_runs(tmp_path, teps_values, name="fig09", fingerprint="abc"):
    ledger = RunLedger(tmp_path)
    for teps in teps_values:
        ledger.append(
            LedgerRecord(
                kind="experiment",
                name=name,
                ts="2026-08-06T00:00:00+00:00",
                commit="deadbee",
                fingerprint=fingerprint,
                metrics={"teps": float(teps)},
            )
        )
    return ledger


def _chaos_report(tmp_path):
    report = {
        "schema": "repro.chaos/v1",
        "ok": True,
        "scale": 12,
        "nodes": 2,
        "ppn": 8,
        "seed": 0,
        "checkpoint_every": 1,
        "baseline": {"teps": 2.5e6, "seconds": 0.004},
        "scenarios": [
            {"name": "crash_early", "outcome": "recovered",
             "overhead_pct": 12.0},
        ],
    }
    path = tmp_path / "chaos.json"
    path.write_text(json.dumps(report))
    return path


class TestLog:
    def test_nothing_to_log_exits_2(self, tmp_path, capsys):
        rc = main(["--dir", str(tmp_path), "log"])
        assert rc == 2
        assert "nothing to log" in capsys.readouterr().err

    def test_from_chaos_appends(self, tmp_path, capsys):
        rc = main(
            ["--dir", str(tmp_path), "log",
             "--from-chaos", str(_chaos_report(tmp_path))]
        )
        assert rc == 0
        assert "1 record(s) appended" in capsys.readouterr().out
        (rec,) = RunLedger(tmp_path).records()
        assert rec.kind == "chaos"
        assert rec.metrics["recovery_overhead_pct_max"] == 12.0

    def test_labels_with_commas_and_quotes(self, tmp_path):
        rc = main(
            ["--dir", str(tmp_path), "log",
             "--from-chaos", str(_chaos_report(tmp_path)),
             "--label", 'note=has,commas and "quotes"',
             "--label", "expr=a=b"]
        )
        assert rc == 0
        (rec,) = RunLedger(tmp_path).records()
        assert rec.labels["note"] == 'has,commas and "quotes"'
        # partition on the first '=' keeps the rest of the value intact.
        assert rec.labels["expr"] == "a=b"

    def test_bad_label_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["--dir", str(tmp_path), "log",
                 "--from-chaos", str(_chaos_report(tmp_path)),
                 "--label", "novalue"]
            )


class TestListAndShow:
    def test_list_empty(self, tmp_path, capsys):
        rc = main(["--dir", str(tmp_path), "list"])
        assert rc == 0
        assert "no records" in capsys.readouterr().out

    def test_list_table(self, tmp_path, capsys):
        _append_runs(tmp_path, [1e6, 2e6])
        rc = main(["--dir", str(tmp_path), "list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out
        assert "fig09" in out
        assert "deadbee" in out

    def test_show_newest_by_default(self, tmp_path, capsys):
        _append_runs(tmp_path, [1e6, 2e6])
        rc = main(["--dir", str(tmp_path), "show"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.run/v1"
        assert doc["metrics"]["teps"] == 2e6

    def test_show_by_index(self, tmp_path, capsys):
        _append_runs(tmp_path, [1e6, 2e6])
        rc = main(["--dir", str(tmp_path), "show", "0"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["metrics"]["teps"] == 1e6

    def test_show_empty_ledger_exits_2(self, tmp_path, capsys):
        rc = main(["--dir", str(tmp_path), "show"])
        assert rc == 2
        assert "no records" in capsys.readouterr().err

    def test_show_out_of_range_exits_2(self, tmp_path, capsys):
        _append_runs(tmp_path, [1e6])
        rc = main(["--dir", str(tmp_path), "show", "7"])
        assert rc == 2
        assert "out of range" in capsys.readouterr().err


class TestCheck:
    def test_break_fails_with_flag(self, tmp_path, capsys):
        """Acceptance: a >= 20 % TEPS drop against a synthetic 10-run
        history makes ``repro-ledger check --fail-on-break`` exit 1."""
        _append_runs(tmp_path, [1e6] * 9 + [0.75e6])
        rc = main(["--dir", str(tmp_path), "check", "--fail-on-break"])
        assert rc == 1
        assert "break" in capsys.readouterr().out

    def test_break_without_flag_still_exits_0(self, tmp_path, capsys):
        _append_runs(tmp_path, [1e6] * 9 + [0.75e6])
        rc = main(["--dir", str(tmp_path), "check"])
        assert rc == 0
        assert "1 break(s)" in capsys.readouterr().out

    def test_clean_history_passes(self, tmp_path, capsys):
        _append_runs(tmp_path, [1e6] * 10)
        rc = main(["--dir", str(tmp_path), "check", "--fail-on-break"])
        assert rc == 0
        assert "0 break(s)" in capsys.readouterr().out

    def test_json_report(self, tmp_path, capsys):
        _append_runs(tmp_path, [1e6] * 9 + [0.75e6])
        out = tmp_path / "trend.json"
        rc = main(
            ["--dir", str(tmp_path), "check", "--json", str(out), "--all"]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.trend/v1"
        assert doc["ok"] is False
        assert any(p["status"] == "break" for p in doc["points"])

    def test_rel_floor_is_percent(self, tmp_path):
        # A 25 % drop passes under a 30 % floor...
        _append_runs(tmp_path, [1e6] * 9 + [0.75e6])
        assert main(
            ["--dir", str(tmp_path), "check", "--fail-on-break",
             "--rel-floor", "30"]
        ) == 0
        # ...and fails under a 20 % floor.
        assert main(
            ["--dir", str(tmp_path), "check", "--fail-on-break",
             "--rel-floor", "20"]
        ) == 1


class TestDash:
    def test_writes_standalone_html(self, tmp_path, capsys):
        """Acceptance: the dashboard is a valid standalone HTML file."""
        _append_runs(tmp_path, [1e6 + 1e4 * i for i in range(6)])
        out = tmp_path / "dash.html"
        rc = main(["--dir", str(tmp_path), "dash", "--out", str(out)])
        assert rc == 0
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "</html>" in html
        assert "<svg" in html  # inline charts, no external assets
        assert "<script src" not in html and "<link" not in html
        assert "fig09" in html
        assert "6 record(s)" in capsys.readouterr().out

    def test_empty_ledger_still_renders(self, tmp_path):
        out = tmp_path / "dash.html"
        rc = main(["--dir", str(tmp_path), "dash", "--out", str(out)])
        assert rc == 0
        assert out.read_text().startswith("<!DOCTYPE html>")
