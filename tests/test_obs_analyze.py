"""Tests for the critical-path analyzer and the model-drift detector."""

import json
import math

import numpy as np
import pytest

from repro.core import BFSConfig, BFSEngine
from repro.core.counts import Direction
from repro.core.timing import COMM_COMPONENTS, comm_component_split
from repro.graph import rmat_graph
from repro.machine import paper_cluster
from repro.obs.analyze import (
    DriftComponent,
    ModelDriftReport,
    RunAttribution,
    attribute_run,
    detect_model_drift,
    record_attribution,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanTracer


@pytest.fixture(scope="module")
def traced():
    """(engine, result) of one traced hybrid run on a 2-node cluster."""
    g = rmat_graph(scale=11, seed=6)
    tr = SpanTracer()
    engine = BFSEngine(
        g,
        paper_cluster(nodes=2),
        BFSConfig.granularity_variant(256),
        tracer=tr,
        metrics=MetricsRegistry(),
    )
    result = engine.run(int(np.argmax(g.degrees())))
    return engine, result


class TestCommComponentSplit:
    def test_partitions_without_loss(self):
        steps = {
            "inq_intra_gather": 10.0,
            "inq_inter": 20.0,
            "summary_inter": 5.0,
            "alltoallv": 7.0,
            "allreduce": 3.0,
        }
        split = comm_component_split(steps)
        assert split["allgather_in_queue"] == 30.0
        assert split["allgather_summary"] == 5.0
        assert split["alltoallv"] == 7.0
        assert split["allreduce"] == 3.0
        assert sum(split.values()) == pytest.approx(sum(steps.values()))

    def test_unknown_steps_go_to_other(self):
        split = comm_component_split({"mystery_step": 4.0})
        assert split["other"] == 4.0
        assert sum(split.values()) == 4.0

    def test_empty(self):
        split = comm_component_split({})
        assert set(split) == set(COMM_COMPONENTS)
        assert all(v == 0.0 for v in split.values())


class TestAttribution:
    def test_attached_to_telemetry(self, traced):
        _, result = traced
        attr = result.telemetry.attribution
        assert isinstance(attr, RunAttribution)
        assert len(attr.levels) == result.levels

    def test_level_totals_match_timing_exactly(self, traced):
        _, result = traced
        attr = result.telemetry.attribution
        for la, lt in zip(attr.levels, result.timing.levels):
            assert la.total_ns == pytest.approx(lt.total_ns, rel=1e-12)
            assert la.comm_total_ns == pytest.approx(lt.comm_ns, rel=1e-12)

    def test_run_split_matches_breakdown_within_1pct(self, traced):
        """Acceptance: the attribution reproduces the compute/comm split
        already recorded in PhaseBreakdown within 1 %."""
        _, result = traced
        attr = result.telemetry.attribution
        bd = result.timing.breakdown
        assert attr.compute_ns[Direction.TOP_DOWN] == pytest.approx(
            bd.td_compute, rel=0.01
        )
        assert attr.compute_ns[Direction.BOTTOM_UP] == pytest.approx(
            bd.bu_compute, rel=0.01
        )
        assert attr.comm_total_ns == pytest.approx(
            bd.td_comm + bd.bu_comm, rel=0.01
        )
        assert attr.switch_ns == pytest.approx(bd.switch, rel=0.01)
        assert attr.stall_ns == pytest.approx(bd.stall, abs=1e-6)
        assert attr.total_ns == pytest.approx(bd.total, rel=0.01)

    def test_per_direction_comm_matches_breakdown(self, traced):
        _, result = traced
        attr = result.telemetry.attribution
        bd = result.timing.breakdown
        td_comm = sum(
            lv.comm_total_ns
            for lv in attr.levels
            if lv.direction == Direction.TOP_DOWN
        )
        bu_comm = sum(
            lv.comm_total_ns
            for lv in attr.levels
            if lv.direction == Direction.BOTTOM_UP
        )
        assert td_comm == pytest.approx(bd.td_comm, rel=0.01)
        assert bu_comm == pytest.approx(bd.bu_comm, rel=0.01)

    def test_critical_rank_is_argmax(self, traced):
        _, result = traced
        attr = result.telemetry.attribution
        for la, lt in zip(attr.levels, result.timing.levels):
            if lt.compute_rank_ns is not None and len(lt.compute_rank_ns):
                assert la.critical_rank == int(
                    np.argmax(lt.compute_rank_ns)
                )

    def test_imbalance_is_max_over_mean(self, traced):
        _, result = traced
        attr = result.telemetry.attribution
        for la, lt in zip(attr.levels, result.timing.levels):
            comp = lt.compute_rank_ns
            if comp is not None and len(comp) and float(np.mean(comp)) > 0:
                expect = float(np.max(comp)) / float(np.mean(comp))
                assert la.imbalance == pytest.approx(expect)
                assert la.imbalance >= 1.0

    def test_top_stragglers_sorted(self, traced):
        _, result = traced
        attr = result.telemetry.attribution
        top = attr.top_stragglers(3)
        stalls = [lv.stall_ns for lv in top]
        assert stalls == sorted(stalls, reverse=True)
        assert stalls[0] == max(lv.stall_ns for lv in attr.levels)

    def test_comm_fraction_in_unit_interval(self, traced):
        _, result = traced
        attr = result.telemetry.attribution
        assert 0.0 <= attr.comm_fraction <= 1.0

    def test_as_dict_is_json_ready(self, traced):
        _, result = traced
        doc = result.telemetry.attribution.as_dict()
        parsed = json.loads(json.dumps(doc))
        assert parsed["schema"] == "repro.attribution/v1"
        assert len(parsed["levels"]) == result.levels
        assert set(parsed["comm_ns"]) >= set(COMM_COMPONENTS)

    def test_to_text_renders(self, traced):
        _, result = traced
        text = result.telemetry.attribution.to_text()
        assert "run attribution" in text
        assert "per-level attribution" in text
        assert "straggler" in text

    def test_record_attribution_metrics(self, traced):
        _, result = traced
        reg = MetricsRegistry()
        record_attribution(result.telemetry.attribution, reg)
        snap = reg.as_dict()
        comp_counters = [
            k
            for k in snap["counters"]
            if k.startswith("bfs.comm.component_sim_ns_total")
        ]
        assert comp_counters
        assert any(
            k.startswith("bfs.level_compute_imbalance")
            for k in snap["histograms"]
        )

    def test_engine_records_component_metrics(self, traced):
        engine, result = traced
        snap = engine.metrics.as_dict()["counters"]
        total = sum(
            v
            for k, v in snap.items()
            if k.startswith("bfs.comm.component_sim_ns_total")
        )
        comm_ns = result.timing.breakdown.td_comm + result.timing.breakdown.bu_comm
        assert total == pytest.approx(comm_ns, rel=0.01)

    def test_untraced_run_has_no_telemetry(self):
        g = rmat_graph(scale=11, seed=6)
        engine = BFSEngine(
            g, paper_cluster(nodes=2), BFSConfig.granularity_variant(256)
        )
        result = engine.run(int(np.argmax(g.degrees())))
        assert result.telemetry is None
        # but attribution can still be computed on demand
        attr = attribute_run(result)
        assert attr.total_ns == pytest.approx(
            result.timing.breakdown.total, rel=0.01
        )


class TestDriftComponent:
    def test_rel_error_signed(self):
        c = DriftComponent("pricing", "x", predicted=110.0, actual=100.0)
        assert c.rel_error == pytest.approx(0.10)
        c = DriftComponent("pricing", "x", predicted=90.0, actual=100.0)
        assert c.rel_error == pytest.approx(-0.10)

    def test_zero_actual(self):
        assert DriftComponent("t", "x", 0.0, 0.0).rel_error == 0.0
        assert DriftComponent("t", "x", 5.0, 0.0).rel_error == math.inf


class TestModelDrift:
    def test_pricing_and_trace_are_exact(self, traced):
        engine, result = traced
        report = detect_model_drift(
            result, engine, threshold=0.01, sources=("pricing", "trace")
        )
        assert report.components
        assert report.ok, [c.as_dict() for c in report.flagged]
        for c in report.components:
            assert abs(c.rel_error) <= 1e-9

    def test_flagging_threshold(self, traced):
        engine, result = traced
        # an impossible threshold flags nothing...
        loose = detect_model_drift(
            result, engine, threshold=math.inf, sources=("analytic",)
        )
        assert loose.ok
        # ...while the analytic approximation at this tiny scale cannot
        # match the functional run to 0.01 % on every component.
        tight = detect_model_drift(
            result, engine, threshold=1e-4, sources=("analytic",)
        )
        assert not tight.ok
        assert all(c.source == "analytic" for c in tight.flagged)

    def test_unknown_source_raises(self, traced):
        engine, result = traced
        with pytest.raises(ValueError):
            detect_model_drift(result, engine, sources=("psychic",))

    def test_metrics_recording(self, traced):
        engine, result = traced
        reg = MetricsRegistry()
        detect_model_drift(
            result,
            engine,
            threshold=1e-4,
            sources=("pricing", "analytic"),
            metrics=reg,
        )
        snap = reg.as_dict()
        assert any(
            k.startswith("model.drift_components_total")
            for k in snap["counters"]
        )
        assert any(
            k.startswith("model.drift_flagged_total")
            for k in snap["counters"]
        )
        assert any(
            k.startswith("model.drift_rel_error") for k in snap["histograms"]
        )

    def test_report_as_dict_and_text(self, traced):
        engine, result = traced
        report = detect_model_drift(result, engine, threshold=0.25)
        doc = json.loads(json.dumps(report.as_dict()))
        assert doc["schema"] == "repro.drift/v1"
        assert doc["threshold"] == 0.25
        assert len(doc["components"]) == len(report.components)
        text = report.to_text()
        assert "model drift" in text
        assert "pricing" in text

    def test_synthetic_cost_model_drift_is_caught(self, traced):
        """Scaling the recorded timeline simulates a cost model that
        changed under a stored result — pricing drift must flag it."""
        import copy

        engine, result = traced
        mutated = copy.copy(result)
        mutated.timing = copy.deepcopy(result.timing)
        mutated.timing.breakdown.bu_comm *= 1.5
        report = detect_model_drift(
            mutated, engine, threshold=0.01, sources=("pricing",)
        )
        assert not report.ok
        assert any(
            c.component == "breakdown.bu_comm" for c in report.flagged
        )

    def test_report_by_source(self, traced):
        engine, result = traced
        report = detect_model_drift(result, engine, threshold=0.25)
        sources = {c.source for c in report.components}
        assert sources == {"pricing", "trace", "analytic"}
        for s in sources:
            assert all(c.source == s for c in report.by_source(s))

    def test_empty_report_is_ok(self):
        assert ModelDriftReport(threshold=0.1).ok
