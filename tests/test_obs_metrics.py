"""Tests for the metrics registry: counters, gauges, histograms, labels."""

import json
import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_raises(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.inc(-1.0)
        assert c.value == 0.0


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        g.set(7)
        g.set(3.5)
        assert g.value == 3.5


class TestHistogram:
    def test_aggregates(self):
        h = Histogram()
        for v in (4.0, 1.0, 7.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["sum"] == 12.0
        assert s["min"] == 1.0
        assert s["max"] == 7.0
        assert s["mean"] == pytest.approx(4.0)
        assert h.mean == pytest.approx(4.0)

    def test_empty_summary_is_finite(self):
        s = Histogram().summary()
        assert s["count"] == 0
        assert s["mean"] == 0.0
        assert math.isfinite(s["min"]) and math.isfinite(s["max"])


class TestMetricsRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("comm.calls_total", op="allgather").inc()
        reg.counter("comm.calls_total", op="alltoallv").inc(2)
        assert reg.counter("comm.calls_total", op="allgather").value == 1
        assert reg.counter("comm.calls_total", op="alltoallv").value == 2

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.counter("x", a=1, b=2).inc()
        reg.counter("x", b=2, a=1).inc()
        snap = reg.as_dict()["counters"]
        assert snap == {"x{a=1,b=2}": 2.0}

    def test_formatted_names(self):
        reg = MetricsRegistry()
        reg.counter("plain").inc()
        reg.gauge("g", experiment="fig09").set(1.5)
        reg.histogram("h", phase="bu_comm").observe(2.0)
        names = [name for name, _ in reg.items()]
        assert names == ["plain", "g{experiment=fig09}", "h{phase=bu_comm}"]

    def test_as_dict_and_to_json_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(0.5)
        reg.histogram("h").observe(1.0)
        parsed = json.loads(reg.to_json())
        assert parsed == reg.as_dict()
        assert parsed["counters"]["c"] == 3.0
        assert parsed["gauges"]["g"] == 0.5
        assert parsed["histograms"]["h"]["count"] == 1


class TestDefaultRegistry:
    def test_singleton_until_reset(self):
        reg = reset_default_registry()
        assert default_registry() is reg
        reg.counter("seen").inc()
        fresh = reset_default_registry()
        assert fresh is not reg
        assert default_registry() is fresh
        assert len(fresh) == 0
