"""Tests for the metrics registry: counters, gauges, histograms, labels."""

import json
import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_raises(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.inc(-1.0)
        assert c.value == 0.0


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        g.set(7)
        g.set(3.5)
        assert g.value == 3.5


class TestHistogram:
    def test_aggregates(self):
        h = Histogram()
        for v in (4.0, 1.0, 7.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["sum"] == 12.0
        assert s["min"] == 1.0
        assert s["max"] == 7.0
        assert s["mean"] == pytest.approx(4.0)
        assert h.mean == pytest.approx(4.0)

    def test_empty_summary_is_finite(self):
        s = Histogram().summary()
        assert s["count"] == 0
        assert s["mean"] == 0.0
        assert math.isfinite(s["min"]) and math.isfinite(s["max"])
        assert s["p50"] == 0.0 and s["p90"] == 0.0 and s["p99"] == 0.0


class TestHistogramPercentile:
    def test_empty_is_zero(self):
        h = Histogram()
        for q in (0.0, 50.0, 99.0, 100.0):
            assert h.percentile(q) == 0.0

    def test_single_sample_is_exact(self):
        h = Histogram()
        h.observe(42.0)
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert h.percentile(q) == 42.0
        s = h.summary()
        assert s["p50"] == 42.0 and s["p99"] == 42.0

    def test_single_valued_stream_is_exact(self):
        h = Histogram()
        for _ in range(100):
            h.observe(7.5)
        assert h.percentile(50.0) == 7.5
        assert h.percentile(99.0) == 7.5

    def test_zero_only_stream(self):
        h = Histogram()
        for _ in range(5):
            h.observe(0.0)
        assert h.percentile(50.0) == 0.0
        assert h.percentile(99.0) == 0.0

    def test_out_of_range_raises(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(-1.0)
        with pytest.raises(ValueError):
            h.percentile(100.5)

    def test_quantiles_within_bucket_error(self):
        # Uniform 1..1000: log-bucket estimate must land within the
        # documented ~9 % relative error of the exact quantile.
        h = Histogram()
        for v in range(1, 1001):
            h.observe(float(v))
        for q, exact in ((50.0, 500.0), (90.0, 900.0), (99.0, 990.0)):
            est = h.percentile(q)
            assert abs(est - exact) / exact < 0.10, (q, est)

    def test_quantiles_are_monotone_and_clamped(self):
        h = Histogram()
        for v in (1.0, 10.0, 100.0, 1000.0):
            h.observe(v)
        qs = [h.percentile(q) for q in (0.0, 25.0, 50.0, 75.0, 100.0)]
        assert qs == sorted(qs)
        assert qs[0] >= h.min and qs[-1] <= h.max
        assert h.percentile(100.0) == 1000.0

    def test_negative_values(self):
        h = Histogram()
        for v in (-100.0, -10.0, -1.0):
            h.observe(v)
        assert h.percentile(1.0) == -100.0  # clamped to min
        assert -15.0 < h.percentile(50.0) < -5.0
        assert h.percentile(100.0) == -1.0


class TestHistogramSignedStreams:
    """Merge edge cases: mixed-sign streams and the single bucket that
    spans zero (the ``(0, 0)`` bucket holds exact zeros)."""

    def test_mixed_sign_median_is_zero(self):
        h = Histogram()
        for v in (-1.0, 0.0, 1.0):
            h.observe(v)
        # Buckets sort by representative (-, 0, +); rank 2 lands on the
        # zero bucket.
        assert h.percentile(50.0) == 0.0
        assert h.percentile(0.0) == -1.0
        assert h.percentile(100.0) == 1.0

    def test_mixed_sign_summary(self):
        h = Histogram()
        for v in (-4.0, -2.0, 0.0, 2.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 5
        assert s["sum"] == 0.0
        assert s["mean"] == 0.0
        assert s["min"] == -4.0 and s["max"] == 4.0
        assert s["p50"] == 0.0
        assert s["p99"] == 4.0  # top rank is tracked exactly

    def test_zero_bucket_dominates_percentiles(self):
        # One bucket spanning zero plus a single positive outlier: every
        # interior rank resolves to 0.0, the extremes stay exact.
        h = Histogram()
        for _ in range(99):
            h.observe(0.0)
        h.observe(5.0)
        assert h.percentile(50.0) == 0.0
        assert h.percentile(99.0) == 0.0
        assert h.percentile(100.0) == 5.0
        s = h.summary()
        assert s["p50"] == 0.0 and s["p90"] == 0.0 and s["p99"] == 0.0
        assert s["max"] == 5.0

    def test_negative_summary_percentiles_clamp(self):
        h = Histogram()
        for v in (-8.0, -4.0, -2.0, -1.0):
            h.observe(v)
        s = h.summary()
        assert s["min"] == -8.0 and s["max"] == -1.0
        assert -8.0 <= s["p50"] <= -1.0
        assert -8.0 <= s["p99"] <= -1.0
        assert s["mean"] == pytest.approx(-3.75)

    def test_signed_quantiles_are_monotone(self):
        h = Histogram()
        for v in (-100.0, -10.0, -1.0, 0.0, 1.0, 10.0, 100.0):
            h.observe(v)
        qs = [h.percentile(q) for q in (0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0)]
        assert qs == sorted(qs)
        assert qs[0] == -100.0 and qs[-1] == 100.0


class TestMetricsRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("comm.calls_total", op="allgather").inc()
        reg.counter("comm.calls_total", op="alltoallv").inc(2)
        assert reg.counter("comm.calls_total", op="allgather").value == 1
        assert reg.counter("comm.calls_total", op="alltoallv").value == 2

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.counter("x", a=1, b=2).inc()
        reg.counter("x", b=2, a=1).inc()
        snap = reg.as_dict()["counters"]
        assert snap == {"x{a=1,b=2}": 2.0}

    def test_formatted_names(self):
        reg = MetricsRegistry()
        reg.counter("plain").inc()
        reg.gauge("g", experiment="fig09").set(1.5)
        reg.histogram("h", phase="bu_comm").observe(2.0)
        names = [name for name, _ in reg.items()]
        assert names == ["plain", "g{experiment=fig09}", "h{phase=bu_comm}"]

    def test_as_dict_and_to_json_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(0.5)
        reg.histogram("h").observe(1.0)
        parsed = json.loads(reg.to_json())
        assert parsed == reg.as_dict()
        assert parsed["counters"]["c"] == 3.0
        assert parsed["gauges"]["g"] == 0.5
        assert parsed["histograms"]["h"]["count"] == 1


class TestDefaultRegistry:
    def test_singleton_until_reset(self):
        reg = reset_default_registry()
        assert default_registry() is reg
        reg.counter("seen").inc()
        fresh = reset_default_registry()
        assert fresh is not reg
        assert default_registry() is fresh
        assert len(fresh) == 0


class TestThreadSafety:
    """Concurrent recording must lose no updates and tear no aggregates.

    The serving scheduler records latencies and cache counters from the
    event loop and from executor worker threads at once; these tests
    hammer one metric family from many threads and assert the exact
    totals (a lost += or a torn count/sum pair fails deterministically
    with enough iterations).
    """

    THREADS = 8
    ITERS = 2_000

    def _hammer(self, fn):
        import threading

        barrier = threading.Barrier(self.THREADS)

        def worker(tid):
            barrier.wait()
            for i in range(self.ITERS):
                fn(tid, i)

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_concurrent_increments_exact(self):
        c = Counter()
        self._hammer(lambda tid, i: c.inc(1.0))
        assert c.value == float(self.THREADS * self.ITERS)

    def test_histogram_concurrent_observations_exact(self):
        h = Histogram()
        self._hammer(lambda tid, i: h.observe(float(i % 100) + 1.0))
        expected = self.THREADS * self.ITERS
        assert h.count == expected
        per_thread = sum(float(i % 100) + 1.0 for i in range(self.ITERS))
        assert h.total == pytest.approx(self.THREADS * per_thread)
        assert h.min == 1.0
        assert h.max == 100.0
        # Quantile reads are consistent while nothing records.
        assert 1.0 <= h.percentile(50.0) <= 100.0

    def test_histogram_reads_during_writes_do_not_crash(self):
        h = Histogram()

        def fn(tid, i):
            if tid == 0:
                h.percentile(99.0)
                h.summary()
            else:
                h.observe(float(i + 1))

        self._hammer(fn)
        assert h.count == (self.THREADS - 1) * self.ITERS

    def test_registry_first_touch_race_returns_one_object(self):
        import threading

        registry = MetricsRegistry()
        barrier = threading.Barrier(self.THREADS)
        seen = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            c = registry.counter("serve.queries", node=0)
            c.inc()
            with lock:
                seen.append(c)

        threads = [
            threading.Thread(target=worker) for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)
        assert seen[0].value == float(self.THREADS)
        assert len(registry) == 1
