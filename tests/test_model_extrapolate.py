"""Tests for the paper-scale extrapolation model."""

import numpy as np
import pytest

from repro.core import BFSConfig, BFSEngine
from repro.errors import ConfigError
from repro.graph import rmat_graph
from repro.machine import paper_cluster
from repro.model import (
    extrapolate_result,
    predict_graph500,
    scale_factor,
)


@pytest.fixture(scope="module")
def run():
    graph = rmat_graph(scale=12, seed=4)
    cluster = paper_cluster(nodes=2)
    config = BFSConfig.original_ppn8()
    engine = BFSEngine(graph, cluster, config)
    result = engine.run(int(np.argmax(graph.degrees())))
    return graph, cluster, config, engine, result


class TestScaleFactor:
    def test_values(self):
        assert scale_factor(2**12, 20) == 2**8
        assert scale_factor(2**12, 12) == 1.0

    def test_downscale_rejected(self):
        with pytest.raises(ConfigError):
            scale_factor(2**12, 11)

    def test_bad_inputs(self):
        with pytest.raises(ConfigError):
            scale_factor(0, 20)
        with pytest.raises(ConfigError):
            scale_factor(2**12, 60)


class TestExtrapolateResult:
    def test_identity_at_same_scale(self, run):
        _, _, _, engine, result = run
        pred = extrapolate_result(result, engine, 12)
        assert pred.factor == 1.0
        assert pred.seconds == pytest.approx(result.seconds, rel=1e-9)
        assert pred.teps == pytest.approx(result.teps, rel=1e-9)

    def test_larger_scale_longer_time(self, run):
        _, _, _, engine, result = run
        pred = extrapolate_result(result, engine, 26)
        assert pred.seconds > result.seconds
        assert pred.traversed_edges == result.traversed_edges * 2**14

    def test_seconds_monotone_in_scale(self, run):
        """Bigger graphs can only take longer; and a paper-scale run must
        deliver far higher TEPS than the tiny measured one (per-level
        latencies amortize)."""
        _, _, _, engine, result = run
        preds = [extrapolate_result(result, engine, s) for s in (16, 22, 28)]
        secs = [p.seconds for p in preds]
        assert secs == sorted(secs)
        assert preds[-1].teps > 10 * result.teps

    def test_counts_structure_preserved(self, run):
        _, _, _, engine, result = run
        pred = extrapolate_result(result, engine, 20)
        assert pred.counts.num_levels == result.counts.num_levels
        assert [l.direction for l in pred.counts.levels] == [
            l.direction for l in result.counts.levels
        ]


class TestPredictGraph500:
    def test_prediction_protocol(self, run):
        graph, cluster, config, _, _ = run
        pred = predict_graph500(
            graph, cluster, config, target_scale=24, num_roots=3, seed=1
        )
        assert len(pred.predictions) == 3
        assert pred.harmonic_mean_teps > 0
        assert pred.measured_scale == 12
        assert pred.target_scale == 24
        bd = pred.mean_breakdown()
        assert bd.total > 0
        assert pred.mean_bu_comm_per_level() > 0

    def test_paper_scale_teps_band(self):
        """Headline sanity: the full optimization stack on 16 nodes at
        scale 32 should land in the tens of GTEPS (paper: 39.2), and the
        unoptimized ppn=1 baseline in the ~2.5x-lower band (paper: 16.1 =
        39.2 / 2.44)."""
        graph = rmat_graph(scale=14, seed=2)
        cluster = paper_cluster(nodes=16)
        best = predict_graph500(
            graph,
            cluster,
            BFSConfig.granularity_variant(256),
            target_scale=32,
            num_roots=3,
            seed=4,
        )
        base = predict_graph500(
            graph,
            cluster,
            BFSConfig.original_ppn1(),
            target_scale=32,
            num_roots=3,
            seed=4,
        )
        assert 10e9 < best.harmonic_mean_teps < 120e9
        ratio = best.harmonic_mean_teps / base.harmonic_mean_teps
        assert 1.5 < ratio < 4.5
