"""Cross-cutting invariants of the BFS engine's accounting, checked over
randomized graphs and configurations.

These are the bookkeeping identities the timing model silently relies
on; if one breaks, every priced figure is suspect.
"""

import dataclasses as dc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BFSConfig, BFSEngine
from repro.core.counts import Direction
from repro.graph import erdos_renyi_graph, rmat_graph
from repro.machine import paper_cluster
from repro.mpi import BindingPolicy


def check_invariants(graph, result):
    counts = result.counts
    levels = counts.levels

    # (1) Discoveries across levels equal the reached set minus the root.
    discovered_total = sum(int(l.discovered.sum()) for l in levels)
    assert discovered_total == result.visited - 1

    # (2) Each level's frontier is the previous level's discoveries
    # (level 0's frontier is the root).
    assert int(levels[0].frontier_local.sum()) == 1
    for prev, cur in zip(levels, levels[1:]):
        assert int(cur.frontier_local.sum()) == int(prev.discovered.sum())

    # (3) The last level discovers nothing (that is the termination test).
    assert int(levels[-1].discovered.sum()) == 0

    # (4) Bottom-up accounting: a candidate is examined at least once
    # unless it has no edges; discoveries never exceed candidates; the
    # summary can only reduce in_queue reads.
    for l in levels:
        if l.direction == Direction.BOTTOM_UP:
            assert int(l.discovered.sum()) <= int(l.candidates.sum())
            assert int(l.inqueue_reads.sum()) <= int(l.examined_edges.sum())
            assert int(l.examined_edges.sum()) >= int(l.discovered.sum())
        else:
            # Top-down traffic carries at most one pair per examined edge.
            if l.td_send_bytes is not None:
                assert (
                    l.td_send_bytes.sum()
                    <= 16 * int(l.examined_edges.sum()) + 16
                )

    # (5) Parents of reached vertices lie in the reached set.
    reached = result.parent >= 0
    parents = result.parent[reached]
    assert np.all(reached[parents])


CONFIGS = [
    BFSConfig.original_ppn8(),
    BFSConfig.original_ppn1(),
    BFSConfig.share_all_variant(),
    BFSConfig.granularity_variant(256),
    dc.replace(BFSConfig.original_ppn8(), alpha=3.0, beta=8.0),
]


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.label)
def test_invariants_on_rmat(config):
    graph = rmat_graph(scale=12, seed=11)
    cluster = paper_cluster(nodes=2)
    root = int(np.argmax(graph.degrees()))
    result = BFSEngine(graph, cluster, config).run(root)
    check_invariants(graph, result)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    p=st.floats(min_value=0.01, max_value=0.2),
    alpha=st.floats(min_value=2.0, max_value=100.0),
)
def test_property_invariants_random_graphs(seed, p, alpha):
    graph = erdos_renyi_graph(192, p, seed=seed)
    if graph.degrees().max() == 0:
        return
    cluster = paper_cluster(nodes=1)
    config = dc.replace(
        BFSConfig(ppn=2, binding=BindingPolicy.BIND_TO_SOCKET), alpha=alpha
    )
    root = int(np.argmax(graph.degrees()))
    result = BFSEngine(graph, cluster, config).run(root)
    check_invariants(graph, result)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_config_does_not_change_the_tree_levels(seed):
    """Every configuration is an implementation of the same algorithm:
    the BFS *levels* (not necessarily the parent choices) must agree."""
    from repro.core.validate import compute_levels

    graph = rmat_graph(scale=11, seed=seed % 17)
    cluster = paper_cluster(nodes=2)
    root = int(np.argmax(graph.degrees()))
    reference = None
    for config in (BFSConfig.original_ppn8(), BFSConfig.par_allgather_variant()):
        result = BFSEngine(graph, cluster, config).run(root)
        levels = compute_levels(graph, root, result.parent)
        if reference is None:
            reference = levels
        else:
            assert np.array_equal(levels, reference)
