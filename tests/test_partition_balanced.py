"""Tests for custom partition bounds and degree-balanced partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BFSConfig, BFSEngine
from repro.core.validate import validate_parent_tree
from repro.errors import ConfigError
from repro.graph import Partition1D, degree_balanced_bounds, rmat_graph
from repro.graph.builder import from_edge_arrays
from repro.machine import paper_cluster


class TestCustomBounds:
    def test_explicit_bounds(self):
        p = Partition1D(10, 2, bounds=np.array([0, 3, 10]))
        assert p.size_of(0) == 3
        assert p.size_of(1) == 7
        assert p.owner(2) == 0
        assert p.owner(3) == 1

    def test_empty_part_allowed(self):
        p = Partition1D(10, 3, bounds=np.array([0, 0, 5, 10]))
        assert p.size_of(0) == 0

    def test_invalid_bounds(self):
        with pytest.raises(ConfigError):
            Partition1D(10, 2, bounds=np.array([0, 3]))  # wrong length
        with pytest.raises(ConfigError):
            Partition1D(10, 2, bounds=np.array([1, 3, 10]))  # no 0 start
        with pytest.raises(ConfigError):
            Partition1D(10, 2, bounds=np.array([0, 3, 9]))  # wrong end
        with pytest.raises(ConfigError):
            Partition1D(10, 2, bounds=np.array([0, 7, 3]))  # decreasing


class TestDegreeBalancedBounds:
    def test_balances_edge_mass(self):
        """On a skewed graph the edge imbalance across parts must drop
        substantially compared to uniform blocks."""
        g = rmat_graph(scale=12, seed=9, permute_labels=False)
        parts = 8
        bounds = degree_balanced_bounds(g, parts, alignment=64)
        p_bal = Partition1D(g.num_vertices, parts, bounds=bounds)
        p_uni = Partition1D(g.num_vertices, parts)

        def edge_imbalance(p):
            masses = [
                p.extract_local(g, i).num_local_arcs for i in range(parts)
            ]
            return max(masses) / (sum(masses) / parts)

        assert edge_imbalance(p_bal) < edge_imbalance(p_uni)

    def test_alignment_respected(self):
        g = rmat_graph(scale=12, seed=9)
        bounds = degree_balanced_bounds(g, 8, alignment=64)
        assert np.all(bounds % 64 == 0)
        assert bounds[0] == 0 and bounds[-1] == g.num_vertices

    def test_validation(self):
        g = rmat_graph(scale=10, seed=1)
        with pytest.raises(ConfigError):
            degree_balanced_bounds(g, 0)
        with pytest.raises(ConfigError):
            degree_balanced_bounds(g, 2, alignment=0)
        odd = from_edge_arrays(100, [0], [1])
        with pytest.raises(ConfigError):
            degree_balanced_bounds(odd, 2, alignment=64)

    def test_engine_correct_with_balanced_partition(self):
        import dataclasses as dc

        g = rmat_graph(scale=12, seed=9, permute_labels=False)
        cluster = paper_cluster(nodes=2)
        cfg = dc.replace(BFSConfig.original_ppn8(), degree_balanced=True)
        root = int(np.argmax(g.degrees()))
        res = BFSEngine(g, cluster, cfg).run(root)
        validate_parent_tree(g, root, res.parent)

        cfg_uniform = BFSConfig.original_ppn8()
        res_uniform = BFSEngine(g, cluster, cfg_uniform).run(root)
        assert res.visited == res_uniform.visited


@settings(max_examples=30, deadline=None)
@given(
    parts=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_balanced_bounds_are_valid_partition(parts, seed):
    g = rmat_graph(scale=10, seed=seed % 7)
    bounds = degree_balanced_bounds(g, parts, alignment=64)
    p = Partition1D(g.num_vertices, parts, bounds=bounds)
    # Every vertex has exactly one owner and ranges tile the space.
    owners = p.owner(np.arange(g.num_vertices))
    for part in range(parts):
        lo, hi = p.range_of(part)
        assert np.all(owners[lo:hi] == part)
