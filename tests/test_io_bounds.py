"""Tests for text edge-list IO, word-aligned bounds and arbitrary rank
counts in the engine."""

import numpy as np
import pytest

from repro.core import BFSConfig, BFSEngine
from repro.core.validate import validate_parent_tree
from repro.errors import ConfigError, GraphError
from repro.graph import (
    build_graph,
    generate_rmat_edges,
    load_text_edges,
    rmat_graph,
    save_text_edges,
    word_aligned_bounds,
)
from repro.machine.spec import ClusterSpec, NodeSpec, x7550_socket


class TestTextEdges:
    def test_round_trip(self, tmp_path):
        edges = generate_rmat_edges(scale=7, seed=4)
        path = tmp_path / "edges.txt"
        save_text_edges(path, edges)
        back = load_text_edges(path)
        assert back.num_vertices == edges.num_vertices
        assert np.array_equal(back.sources, edges.sources)
        assert np.array_equal(back.targets, edges.targets)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("# header\n\n0 1\n# mid\n1 2\n")
        edges = load_text_edges(path)
        assert edges.num_edges == 2
        assert edges.num_vertices == 64  # aligned up

    def test_explicit_num_vertices(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("0 1\n")
        edges = load_text_edges(path, num_vertices=128)
        assert edges.num_vertices == 128

    def test_alignment_rounding(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("0 200\n")
        edges = load_text_edges(path)
        assert edges.num_vertices == 256  # 201 rounded up to 64 multiple

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphError, match="expected"):
            load_text_edges(path)
        path.write_text("a b\n")
        with pytest.raises(GraphError, match="non-integer"):
            load_text_edges(path)
        path.write_text("-1 2\n")
        with pytest.raises(GraphError, match="negative"):
            load_text_edges(path)

    def test_bfs_on_loaded_text_graph(self, tmp_path):
        edges = generate_rmat_edges(scale=9, seed=4)
        path = tmp_path / "e.txt"
        save_text_edges(path, edges)
        graph = build_graph(load_text_edges(path))
        from repro.machine import paper_cluster

        root = int(np.argmax(graph.degrees()))
        res = BFSEngine(
            graph, paper_cluster(nodes=1), BFSConfig.original_ppn8()
        ).run(root)
        validate_parent_tree(graph, root, res.parent)


class TestWordAlignedBounds:
    def test_divisible_case_uniform(self):
        bounds = word_aligned_bounds(1024, 4)
        assert bounds.tolist() == [0, 256, 512, 768, 1024]

    def test_non_divisor_rank_count(self):
        bounds = word_aligned_bounds(1024, 3)
        assert bounds[0] == 0 and bounds[-1] == 1024
        assert np.all(bounds % 64 == 0)
        sizes = np.diff(bounds)
        assert sizes.max() - sizes.min() <= 64

    def test_more_ranks_than_blocks(self):
        bounds = word_aligned_bounds(128, 5)
        assert bounds[0] == 0 and bounds[-1] == 128
        assert np.all(np.diff(bounds) >= 0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            word_aligned_bounds(100, 2)  # not 64-aligned
        with pytest.raises(ConfigError):
            word_aligned_bounds(128, 0)
        with pytest.raises(ConfigError):
            word_aligned_bounds(128, 2, alignment=0)


class TestNonPowerOfTwoRanks:
    def test_six_socket_cluster(self):
        cluster = ClusterSpec(
            nodes=3, node=NodeSpec(sockets=6, socket=x7550_socket())
        )
        g = rmat_graph(scale=12, seed=3)
        root = int(np.argmax(g.degrees()))
        res = BFSEngine(g, cluster, BFSConfig()).run(root)  # 18 ranks
        validate_parent_tree(g, root, res.parent)
        assert res.counts.num_ranks == 18

    def test_unaligned_graph_still_rejected(self):
        from repro.graph import erdos_renyi_graph
        from repro.machine import paper_cluster

        g = erdos_renyi_graph(100, 0.1, seed=1)  # 100 not 64-aligned
        with pytest.raises(ConfigError):
            BFSEngine(g, paper_cluster(nodes=1), BFSConfig.original_ppn8())

    def test_too_few_vertices_rejected(self):
        from repro.graph import path_graph
        from repro.machine import paper_cluster

        g = path_graph(64)  # 64 vertices < 8 ranks * 64
        with pytest.raises(ConfigError):
            BFSEngine(g, paper_cluster(nodes=1), BFSConfig.original_ppn8())
