"""Edge-path coverage: IO failures, CLI flags, settings helpers,
engine configuration corners, analytic-mode options."""

import dataclasses as dc

import numpy as np
import pytest

from repro.core import BFSConfig, BFSEngine, CommConfig, TraversalMode
from repro.core.validate import validate_parent_tree
from repro.errors import GraphError
from repro.experiments.cli import main as cli_main
from repro.experiments.common import ExperimentSettings, cached_rmat_graph
from repro.graph import load_graph, rmat_graph, save_graph
from repro.machine import paper_cluster
from repro.model.analytic import analytic_graph500
from repro.model.levelprofile import (
    rmat_degree_classes,
    simulate_level_profile,
    synthesize_run_counts,
)
from repro.mpi import BindingPolicy


class TestSettings:
    def test_measured_scale_floor(self):
        s = ExperimentSettings(scale_offset=20)
        assert s.measured_scale(28) == 13  # floor at 13

    def test_quick_mode(self):
        q = ExperimentSettings().quick()
        assert q.num_roots == 2
        assert q.scale_offset == 16

    def test_cached_graph_identity(self):
        g1 = cached_rmat_graph(12, 2)
        g2 = cached_rmat_graph(12, 2)
        assert g1 is g2


class TestIOErrors:
    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph(tmp_path / "nope.npz")

    def test_round_trip_preserves_bfs(self, tmp_path):
        g = rmat_graph(scale=11, seed=3)
        save_graph(tmp_path / "g.npz", g)
        back = load_graph(tmp_path / "g.npz")
        cluster = paper_cluster(nodes=1)
        root = int(np.argmax(g.degrees()))
        res1 = BFSEngine(g, cluster, BFSConfig.original_ppn8()).run(root)
        res2 = BFSEngine(back, cluster, BFSConfig.original_ppn8()).run(root)
        assert np.array_equal(res1.parent, res2.parent)


class TestCliFlags:
    def test_offset_and_roots_flags(self, capsys):
        assert cli_main(["fig04", "--roots", "2", "--offset", "17"]) == 0
        assert "paper-vs-measured" in capsys.readouterr().out

    def test_no_weak_node_flag(self, capsys):
        assert cli_main(["table1", "--no-weak-node"]) == 0


class TestEngineCorners:
    def test_intermediate_ppn_runs(self):
        g = rmat_graph(scale=12, seed=5)
        cluster = paper_cluster(nodes=2)
        cfg = BFSConfig(ppn=4)
        root = int(np.argmax(g.degrees()))
        res = BFSEngine(g, cluster, cfg).run(root)
        validate_parent_tree(g, root, res.parent)

    def test_ppn2_noflag(self):
        g = rmat_graph(scale=12, seed=5)
        cluster = paper_cluster(nodes=2)
        cfg = BFSConfig(ppn=2, binding=BindingPolicy.NOFLAG)
        root = int(np.argmax(g.degrees()))
        res = BFSEngine(g, cluster, cfg).run(root)
        validate_parent_tree(g, root, res.parent)

    def test_share_all_without_summary(self):
        g = rmat_graph(scale=12, seed=5)
        cluster = paper_cluster(nodes=2)
        cfg = BFSConfig(comm=CommConfig.shared_all(use_summary=False))
        root = int(np.argmax(g.degrees()))
        res = BFSEngine(g, cluster, cfg).run(root)
        validate_parent_tree(g, root, res.parent)
        assert all(
            lvl.inqueue_reads.sum() == lvl.examined_edges.sum()
            for lvl in res.counts.levels
            if lvl.direction == "bottom_up"
        )

    def test_isolated_root_terminates_immediately(self):
        from repro.graph.builder import from_edge_arrays

        g = from_edge_arrays(512, [1], [2])
        cluster = paper_cluster(nodes=1)
        cfg = BFSConfig(ppn=1, binding=BindingPolicy.INTERLEAVE)
        res = BFSEngine(g, cluster, cfg).run(0)  # vertex 0 isolated
        assert res.visited == 1
        assert res.levels == 1  # one expansion discovering nothing

    def test_tiny_alpha_switches_immediately(self):
        g = rmat_graph(scale=12, seed=5)
        cluster = paper_cluster(nodes=1)
        cfg = dc.replace(BFSConfig.original_ppn8(), alpha=10**9)
        root = int(np.argmax(g.degrees()))
        res = BFSEngine(g, cluster, cfg).run(root)
        # Huge alpha -> bottom-up from level 1 at the latest.
        dirs = [lvl.direction for lvl in res.counts.levels]
        assert dirs[1] == "bottom_up"
        validate_parent_tree(g, root, res.parent)

    def test_huge_beta_never_returns_to_top_down(self):
        g = rmat_graph(scale=12, seed=5)
        cluster = paper_cluster(nodes=1)
        cfg = dc.replace(BFSConfig.original_ppn8(), beta=10**9)
        root = int(np.argmax(g.degrees()))
        res = BFSEngine(g, cluster, cfg).run(root)
        dirs = [lvl.direction for lvl in res.counts.levels]
        first_bu = dirs.index("bottom_up")
        # With beta huge, the frontier never drops below n/beta... it
        # does at the very end, but the switch-back requires the check to
        # trigger; all levels after the first BU must remain bottom-up or
        # the run must have ended.
        assert all(d == "bottom_up" for d in dirs[first_bu:])


class TestAnalyticOptions:
    def test_custom_edgefactor(self):
        cluster = paper_cluster(nodes=2)
        res8 = analytic_graph500(
            cluster, BFSConfig.original_ppn8(), 28, edgefactor=8
        )
        res32 = analytic_graph500(
            cluster, BFSConfig.original_ppn8(), 28, edgefactor=32
        )
        assert res32.counts.traversed_edges > res8.counts.traversed_edges

    def test_max_levels_cap(self):
        classes = rmat_degree_classes(20)
        profile = simulate_level_profile(
            classes, BFSConfig.original_ppn8(), max_levels=3
        )
        assert len(profile) <= 3

    def test_synthesize_without_summary(self):
        counts, _ = synthesize_run_counts(
            24, BFSConfig(comm=CommConfig(use_summary=False)), num_ranks=16
        )
        bu = [l for l in counts.levels if l.direction == "bottom_up"]
        assert bu
        for lvl in bu:
            assert lvl.summary_part_words == 0
            assert np.all(lvl.inqueue_reads == lvl.examined_edges)

    def test_pure_td_counts_have_traffic(self):
        counts, _ = synthesize_run_counts(
            24, BFSConfig(mode=TraversalMode.TOP_DOWN), num_ranks=16
        )
        assert all(l.direction == "top_down" for l in counts.levels)
        assert any(
            l.td_send_bytes is not None and l.td_send_bytes.sum() > 0
            for l in counts.levels
        )


class TestOmpScheduling:
    def test_static_prices_slower(self):
        g = cached_rmat_graph(12, 2)
        cluster = paper_cluster(nodes=1)
        root = int(np.argmax(g.degrees()))
        dyn = BFSEngine(g, cluster, BFSConfig.original_ppn8()).run(root)
        cfg = dc.replace(BFSConfig.original_ppn8(), omp_dynamic=False)
        sta = BFSEngine(g, cluster, cfg).run(root)
        assert sta.timing.breakdown.bu_compute > dyn.timing.breakdown.bu_compute
        # Communication is unaffected by intra-rank scheduling.
        assert sta.timing.breakdown.bu_comm == dyn.timing.breakdown.bu_comm
