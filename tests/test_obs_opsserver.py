"""The live ops HTTP server: /metrics, /healthz, /debug/state."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.expo import CONTENT_TYPE, parse_openmetrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.opsserver import (
    NULL_OPS,
    NullOpsServer,
    OpsServer,
    normalize_probe,
)


def _get(url: str):
    """(status, content_type, body_bytes) — 4xx/5xx included."""
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.headers.get("Content-Type"), resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.headers.get("Content-Type"), err.read()


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.counter("serve.requests_total").inc(7)
    reg.gauge("serve.queue_depth").set(2)
    reg.histogram("serve.latency_ms").observe(1.5)
    return reg


class TestNormalizeProbe:
    def test_bool(self):
        assert normalize_probe(True) == (True, {})
        assert normalize_probe(False) == (False, {})

    def test_pair(self):
        assert normalize_probe((False, {"x": 1})) == (False, {"x": 1})

    def test_bare_detail_is_passing(self):
        assert normalize_probe({"entries": 3}) == (True, {"entries": 3})


class TestNullOpsServer:
    def test_noop_lifecycle(self):
        assert NULL_OPS.enabled is False
        assert NULL_OPS.port is None
        with NULL_OPS.start() as ops:
            assert isinstance(ops, NullOpsServer)
        NULL_OPS.stop()


class TestEndpoints:
    def test_metrics_scrape_parses(self, registry):
        with OpsServer(metrics=registry) as ops:
            status, ctype, body = _get(f"{ops.url}/metrics")
        assert status == 200
        assert ctype == CONTENT_TYPE
        doc = parse_openmetrics(body.decode("utf-8"))
        ((_s, _l, value),) = doc["serve_requests"]["samples"]
        assert value == 7.0
        assert doc["serve_latency_ms"]["type"] == "histogram"

    def test_metrics_404_without_registry(self):
        with OpsServer() as ops:
            status, _ctype, body = _get(f"{ops.url}/metrics")
        assert status == 404
        assert "registry" in json.loads(body)["error"]

    def test_healthz_ok(self):
        probes = {
            "always": lambda: True,
            "detailed": lambda: (True, {"entries": 1}),
        }
        with OpsServer(health=probes) as ops:
            status, _ctype, body = _get(f"{ops.url}/healthz")
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["checks"]["detailed"]["detail"] == {"entries": 1}

    def test_healthz_failing_probe_is_503(self):
        probes = {"good": lambda: True, "bad": lambda: (False, "down")}
        with OpsServer(health=probes) as ops:
            status, _ctype, body = _get(f"{ops.url}/healthz")
        assert status == 503
        doc = json.loads(body)
        assert doc["status"] == "unhealthy"
        assert doc["checks"]["bad"]["ok"] is False
        assert doc["checks"]["good"]["ok"] is True

    def test_healthz_crashing_probe_is_503(self):
        def boom():
            raise RuntimeError("probe exploded")

        with OpsServer(health={"boom": boom}) as ops:
            status, _ctype, body = _get(f"{ops.url}/healthz")
        assert status == 503
        doc = json.loads(body)
        assert "probe exploded" in doc["checks"]["boom"]["detail"]["error"]

    def test_debug_state(self):
        state = {"queue_depth": 4, "config_fingerprint": "abc123"}
        with OpsServer(state=lambda: state) as ops:
            status, ctype, body = _get(f"{ops.url}/debug/state")
        assert status == 200
        assert ctype.startswith("application/json")
        assert json.loads(body) == state

    def test_debug_state_empty_without_provider(self):
        with OpsServer() as ops:
            status, _ctype, body = _get(f"{ops.url}/debug/state")
        assert status == 200
        assert json.loads(body) == {}

    def test_unknown_path_404_lists_endpoints(self):
        with OpsServer() as ops:
            status, _ctype, body = _get(f"{ops.url}/nope")
        assert status == 404
        assert json.loads(body)["paths"] == [
            "/metrics",
            "/healthz",
            "/debug/state",
        ]


class TestLifecycle:
    def test_ephemeral_port_and_idempotent_start(self):
        ops = OpsServer()
        assert ops.port is None and ops.url is None
        ops.start()
        try:
            port = ops.port
            assert port and port > 0
            assert ops.start() is ops
            assert ops.port == port
        finally:
            ops.stop()
        assert ops.port is None
        ops.stop()  # idempotent

    def test_live_registry_updates_between_scrapes(self, registry):
        with OpsServer(metrics=registry) as ops:
            _status, _ctype, body = _get(f"{ops.url}/metrics")
            before = parse_openmetrics(body.decode())
            registry.counter("serve.requests_total").inc(3)
            _status, _ctype, body = _get(f"{ops.url}/metrics")
            after = parse_openmetrics(body.decode())
        assert before["serve_requests"]["samples"][0][2] == 7.0
        assert after["serve_requests"]["samples"][0][2] == 10.0
