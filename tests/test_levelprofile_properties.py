"""Property tests of the analytic level-profile recursion: conservation
laws and monotonicity that must hold at every scale and parameterization."""

import dataclasses as dc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BFSConfig
from repro.model.levelprofile import (
    mean_root_lambda,
    rmat_degree_classes,
    simulate_level_profile,
    typical_root_lambda,
)


@settings(max_examples=25, deadline=None)
@given(
    scale=st.integers(min_value=10, max_value=36),
    edgefactor=st.sampled_from([4, 16, 32]),
    root_lambda=st.floats(min_value=1.0, max_value=1000.0),
)
def test_property_mass_conservation(scale, edgefactor, root_lambda):
    """Discoveries never exceed the vertex count, frontier sizes are
    non-negative, and the run terminates."""
    classes = rmat_degree_classes(scale, edgefactor)
    profile = simulate_level_profile(
        classes, BFSConfig.original_ppn8(), root_lambda=root_lambda
    )
    assert profile, "at least the root level"
    total_discovered = sum(l.discovered for l in profile)
    assert total_discovered <= classes.num_vertices * (1 + 1e-9)
    for lvl in profile:
        assert lvl.frontier_vertices >= 0
        assert lvl.examined_edges >= 0
        assert 0.0 <= lvl.frontier_density <= 1.0
        assert 0.0 <= lvl.hit_fraction <= 1.0


@settings(max_examples=20, deadline=None)
@given(scale=st.integers(min_value=16, max_value=36))
def test_property_reached_fraction_band(scale):
    """The reached fraction stays in a sane band at any scale."""
    classes = rmat_degree_classes(scale)
    profile = simulate_level_profile(classes, BFSConfig.original_ppn8())
    frac = sum(l.discovered for l in profile) / classes.num_vertices
    assert 0.2 < frac < 0.8


def test_reached_fraction_decreases_with_scale():
    """A known Graph500 R-MAT property: the isolated/unreachable mass
    grows with scale, so the reached fraction declines."""
    fracs = []
    for scale in (16, 24, 32):
        classes = rmat_degree_classes(scale)
        profile = simulate_level_profile(classes, BFSConfig.original_ppn8())
        fracs.append(
            sum(l.discovered for l in profile) / classes.num_vertices
        )
    assert fracs[0] > fracs[1] > fracs[2]


@settings(max_examples=20, deadline=None)
@given(
    scale=st.integers(min_value=14, max_value=32),
    alpha=st.floats(min_value=2.0, max_value=200.0),
)
def test_property_three_phase_any_alpha(scale, alpha):
    """The hybrid recursion keeps the TD/BU/TD phase structure for any
    switch threshold."""
    classes = rmat_degree_classes(scale)
    cfg = dc.replace(BFSConfig.original_ppn8(), alpha=alpha)
    profile = simulate_level_profile(classes, cfg)
    dirs = [l.direction for l in profile]
    if "bottom_up" in dirs:
        first = dirs.index("bottom_up")
        last = len(dirs) - 1 - dirs[::-1].index("bottom_up")
        assert all(d == "bottom_up" for d in dirs[first : last + 1])


def test_root_lambda_helpers():
    classes = rmat_degree_classes(24)
    # The degree-weighted mean is dominated by hubs; the typical root is
    # near the edgefactor.
    assert mean_root_lambda(classes) > 2 * typical_root_lambda(classes)
    assert typical_root_lambda(classes) == 16.0


@settings(max_examples=15, deadline=None)
@given(scale=st.integers(min_value=16, max_value=32))
def test_property_examined_bounded_by_arcs_per_level(scale):
    """No level can examine more than every arc once per candidate scan
    direction (a loose but absolute sanity bound)."""
    classes = rmat_degree_classes(scale)
    profile = simulate_level_profile(classes, BFSConfig.original_ppn8())
    arcs = classes.num_endpoints
    for lvl in profile:
        assert lvl.examined_edges <= arcs * (1 + 1e-9)
