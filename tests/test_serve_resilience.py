"""Serving-layer resilience: deadlines, shedding, hedging, supervision."""

import asyncio
import threading
import time
from dataclasses import dataclass

import pytest

from repro.core.prepared import PreparedGraphCache
from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    ServeOverloadError,
)
from repro.faults.plan import FaultPlan, ServeFault
from repro.faults.serveinject import ServeFaultInjector
from repro.graph.rmat import rmat_graph
from repro.machine.spec import paper_cluster
from repro.serve.loadgen import run_load
from repro.serve.report import build_report
from repro.serve.resilience import (
    SHED_POLICIES,
    CancelToken,
    CircuitBreaker,
    ResiliencePolicy,
)
from repro.serve.scheduler import BatchScheduler, ResultCache
from repro.serve.session import BFSService


@dataclass
class StubResult:
    """Result double carrying the fields resilience paths inspect."""

    root: int
    parent: object = None


class StubSession:
    """Engine-free session with injectable latency/failures.

    ``release`` blocks every batch until set; ``fail_times`` makes the
    first N batches raise; ``delay_s`` sleeps per batch.  ``fresh()``
    returns the configured ``fresh_session`` (or a fast clean clone),
    mirroring :meth:`~repro.serve.session.GraphSession.fresh`.
    """

    digest = "stub-digest"
    config = "stub-config"

    def __init__(
        self,
        release: threading.Event | None = None,
        fail_times: int = 0,
        delay_s: float = 0.0,
        fresh_session=None,
    ) -> None:
        self.release = release
        self.fail_times = fail_times
        self.delay_s = delay_s
        self.fresh_session = fresh_session
        self.batches: list[list[int]] = []
        self.fresh_calls = 0

    def fresh(self):
        self.fresh_calls += 1
        if self.fresh_session is not None:
            return self.fresh_session
        return StubSession()

    def run_batch(self, sources):
        if self.release is not None:
            assert self.release.wait(timeout=30)
        if self.delay_s:
            time.sleep(self.delay_s)
        if self.fail_times > 0:
            self.fail_times -= 1
            raise RuntimeError("stub batch failure")
        self.batches.append(list(sources))
        return [StubResult(root=int(s)) for s in sources]


class TestResiliencePolicy:
    def test_defaults_validate(self):
        policy = ResiliencePolicy()
        assert policy.shed_policy in SHED_POLICIES
        doc = policy.as_dict()
        assert doc["hedge"] is True
        assert doc["max_queue_depth"] is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue_depth": 0},
            {"shed_policy": "panic"},
            {"degrade_max_batch": 0},
            {"hedge_percentile": 0.0},
            {"hedge_percentile": 101.0},
            {"hedge_min_ms": -1.0},
            {"hedge_warmup": 0},
            {"breaker_threshold": -1},
            {"breaker_cooldown_s": 0.0},
            {"restart_backoff_s": 0.0},
            {"restart_backoff_s": 1.0, "restart_backoff_max_s": 0.5},
            {"max_restarts": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            ResiliencePolicy(**kwargs)


class TestCancelToken:
    def test_manual_cancel(self):
        token = CancelToken()
        assert not token.cancelled
        token.check("anywhere")  # no-op before firing
        token.cancel()
        assert token.cancelled
        with pytest.raises(DeadlineExceededError) as err:
            token.check("level 3")
        assert err.value.context["where"] == "level 3"

    def test_deadline_fires_via_clock(self):
        now = [0.0]
        token = CancelToken(deadline=1.0, clock=lambda: now[0])
        assert not token.cancelled
        assert token.remaining == 1.0
        now[0] = 2.0
        assert token.remaining == 0.0
        assert token.cancelled
        with pytest.raises(DeadlineExceededError):
            token.check()

    def test_no_deadline_has_no_remaining(self):
        assert CancelToken().remaining is None


class TestCircuitBreaker:
    def test_trips_after_threshold_and_cools_down(self):
        now = [0.0]
        breaker = CircuitBreaker(2, 10.0, clock=lambda: now[0])
        key = ("g", "c")
        assert breaker.state(key) == "closed"
        breaker.record_failure(key)
        assert breaker.allow(key)
        breaker.record_failure(key)
        assert breaker.state(key) == "open"
        assert not breaker.allow(key)
        assert breaker.fast_fails == 1
        # Cooldown elapses: exactly one half-open probe is admitted.
        now[0] = 11.0
        assert breaker.state(key) == "half-open"
        assert breaker.allow(key)
        assert not breaker.allow(key)  # second caller keeps fast-failing
        breaker.record_success(key)
        assert breaker.state(key) == "closed"
        assert breaker.allow(key)
        assert breaker.trips == 1

    def test_failed_probe_restarts_cooldown(self):
        now = [0.0]
        breaker = CircuitBreaker(1, 5.0, clock=lambda: now[0])
        breaker.record_failure("k")
        now[0] = 6.0
        assert breaker.allow("k")  # the probe
        breaker.record_failure("k")
        assert breaker.state("k") == "open"
        assert not breaker.allow("k")

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(2, 5.0)
        breaker.record_failure("k")
        breaker.record_success("k")
        breaker.record_failure("k")
        assert breaker.state("k") == "closed"

    def test_zero_threshold_disables(self):
        breaker = CircuitBreaker(0, 5.0)
        for _ in range(10):
            breaker.record_failure("k")
        assert breaker.allow("k")
        assert breaker.snapshot()["trips"] == 0

    def test_snapshot_shape(self):
        breaker = CircuitBreaker(1, 5.0)
        breaker.record_failure(("d", "c"))
        snap = breaker.snapshot()
        assert snap["threshold"] == 1
        assert list(snap["states"].values()) == ["open"]


class TestResultCacheBounds:
    def test_byte_bound_evicts_lru(self):
        cache = ResultCache(maxsize=16, max_bytes=600)
        # Stub results have no parent array: each costs the 256-byte
        # constant, so the third insert pushes bytes past 600.
        cache.put(("a",), StubResult(root=1))
        cache.put(("b",), StubResult(root=2))
        cache.put(("c",), StubResult(root=3))
        assert len(cache) == 2
        assert cache.get(("a",)) is None
        assert cache.get(("c",)).root == 3
        stats = cache.stats()
        assert stats["bytes"] == 512
        assert stats["max_bytes"] == 600

    def test_byte_bound_keeps_at_least_one_entry(self):
        cache = ResultCache(maxsize=4, max_bytes=1)
        cache.put(("a",), StubResult(root=1))
        assert len(cache) == 1

    def test_ttl_expires_fresh_reads_but_not_stale_ones(self):
        now = [0.0]
        cache = ResultCache(maxsize=4, ttl_s=1.0, clock=lambda: now[0])
        cache.put(("a",), StubResult(root=1))
        assert cache.get(("a",)).root == 1
        now[0] = 2.0
        assert cache.get(("a",)) is None  # expired for fresh reads
        served = cache.get_stale(("a",))
        assert served is not None
        result, age, stale = served
        assert result.root == 1 and age == 2.0 and stale
        assert cache.stats()["stale_hits"] == 1

    def test_get_stale_respects_max_age(self):
        now = [0.0]
        cache = ResultCache(maxsize=4, ttl_s=1.0, clock=lambda: now[0])
        cache.put(("a",), StubResult(root=1))
        now[0] = 5.0
        assert cache.get_stale(("a",), max_age_s=3.0) is None

    def test_invalidate(self):
        cache = ResultCache(maxsize=4)
        cache.put(("a",), StubResult(root=1))
        assert cache.invalidate(("a",))
        assert not cache.invalidate(("a",))
        assert cache.stats()["bytes"] == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            ResultCache(max_bytes=0)
        with pytest.raises(ConfigError):
            ResultCache(ttl_s=0.0)


async def _pickup(scheduler):
    """Wait until the dispatcher has picked up the queued batch."""
    for _ in range(200):
        if scheduler.in_flight and scheduler.queue_depth == 0:
            return
        await asyncio.sleep(0.005)
    raise AssertionError("dispatcher never picked up the batch")


class TestDeadlines:
    def test_expired_in_queue_is_shed(self):
        release = threading.Event()
        session = StubSession(release=release)
        scheduler = BatchScheduler(
            session,
            max_batch=1,
            max_wait_ms=0.0,
            result_cache=None,
            resilience=ResiliencePolicy(supervise=False, hedge=False),
        )

        async def go():
            async with scheduler:
                blocker = asyncio.ensure_future(scheduler.submit(0))
                await _pickup(scheduler)
                victim = asyncio.ensure_future(
                    scheduler.submit(1, deadline_ms=1.0)
                )
                await asyncio.sleep(0.05)  # deadline expires while queued
                release.set()
                await blocker
                with pytest.raises(DeadlineExceededError) as err:
                    await victim
                assert err.value.context["source"] == 1
            return scheduler.metrics.counter(
                "serve.shed_total", reason="deadline"
            ).value

        assert asyncio.run(go()) == 1
        assert scheduler.stats()["resilience"]["counts"]["shed_deadline"] == 1
        # The expired query never reached the session.
        assert [b for b in session.batches if 1 in b] == []


class TestAdmissionControl:
    def _scheduler(self, session, shed_policy, **policy_kwargs):
        return BatchScheduler(
            session,
            max_batch=1,
            max_wait_ms=0.0,
            result_cache=None,
            resilience=ResiliencePolicy(
                max_queue_depth=1,
                shed_policy=shed_policy,
                supervise=False,
                hedge=False,
                **policy_kwargs,
            ),
        )

    def test_reject_when_queue_full(self):
        release = threading.Event()
        session = StubSession(release=release)
        scheduler = self._scheduler(session, "reject")

        async def go():
            async with scheduler:
                blocker = asyncio.ensure_future(scheduler.submit(0))
                await _pickup(scheduler)
                queued = asyncio.ensure_future(scheduler.submit(1))
                await asyncio.sleep(0.02)
                with pytest.raises(ServeOverloadError) as err:
                    await scheduler.submit(2)
                assert err.value.context["reason"] == "queue_full"
                release.set()
                assert (await blocker).root == 0
                assert (await queued).root == 1

        asyncio.run(go())
        counts = scheduler.stats()["resilience"]["counts"]
        assert counts["shed_queue_full"] == 1

    def test_drop_oldest_evicts_queued_waiter(self):
        release = threading.Event()
        session = StubSession(release=release)
        scheduler = self._scheduler(session, "drop-oldest")

        async def go():
            async with scheduler:
                blocker = asyncio.ensure_future(scheduler.submit(0))
                await _pickup(scheduler)
                victim = asyncio.ensure_future(scheduler.submit(1))
                await asyncio.sleep(0.02)
                newcomer = asyncio.ensure_future(scheduler.submit(2))
                await asyncio.sleep(0.02)
                release.set()
                assert (await blocker).root == 0
                assert (await newcomer).root == 2
                with pytest.raises(ServeOverloadError) as err:
                    await victim
                assert err.value.context["reason"] == "shed"
                assert err.value.context["source"] == 1

        asyncio.run(go())
        assert 1 not in [s for b in session.batches for s in b]

    def test_degrade_serves_stale_and_shrinks_batches(self):
        release = threading.Event()
        session = StubSession(release=release)
        cache = ResultCache(maxsize=8, ttl_s=0.01)
        scheduler = BatchScheduler(
            session,
            max_batch=32,
            max_wait_ms=0.0,
            result_cache=cache,
            resilience=ResiliencePolicy(
                max_queue_depth=1,
                shed_policy="degrade",
                degrade_max_batch=2,
                supervise=False,
                hedge=False,
            ),
        )

        async def go():
            async with scheduler:
                release.set()
                first = await scheduler.submit(7)  # populates the cache
                assert first.root == 7
                await asyncio.sleep(0.03)  # cache entry goes stale
                release.clear()
                blocker = asyncio.ensure_future(scheduler.submit(0))
                await _pickup(scheduler)
                queued = asyncio.ensure_future(scheduler.submit(1))
                await asyncio.sleep(0.02)
                overflow = asyncio.ensure_future(scheduler.submit(2))
                await asyncio.sleep(0.02)
                assert scheduler.degraded
                # Degraded + stale entry: served from cache, no queueing.
                stale = await scheduler.submit(7)
                assert stale.root == 7
                release.set()
                await asyncio.gather(blocker, queued, overflow)

        asyncio.run(go())
        resil = scheduler.stats()["resilience"]
        assert resil["counts"]["stale_served"] == 1
        assert resil["counts"]["degrade_entries"] == 1
        assert cache.stats()["stale_hits"] == 1
        assert scheduler.metrics.counter("serve.stale_served_total").value == 1


class TestHedging:
    def test_straggler_is_hedged_and_fresh_session_adopted(self):
        release = threading.Event()
        fast = StubSession()
        slow = StubSession(release=release, fresh_session=fast)
        scheduler = BatchScheduler(
            slow,
            max_batch=4,
            max_wait_ms=0.0,
            result_cache=None,
            resilience=ResiliencePolicy(
                hedge=True,
                hedge_warmup=1,
                hedge_min_ms=10.0,
                supervise=False,
            ),
        )

        async def go():
            async with scheduler:
                release.set()
                await scheduler.submit(0)  # warm-up batch for the histogram
                release.clear()  # next primary batch stalls
                result = await scheduler.submit(1)
                assert result.root == 1
                release.set()

        asyncio.run(go())
        counts = scheduler.stats()["resilience"]["counts"]
        assert counts["hedges"] == 1
        assert counts["hedge_wins"] == 1
        assert scheduler.session is fast  # abandoned primary lost its session
        assert scheduler.metrics.counter("serve.hedge_total").value == 1

    def test_no_hedge_before_warmup(self):
        session = StubSession(delay_s=0.03)
        scheduler = BatchScheduler(
            session,
            max_batch=4,
            result_cache=None,
            resilience=ResiliencePolicy(
                hedge=True, hedge_warmup=8, hedge_min_ms=1.0, supervise=False
            ),
        )

        async def go():
            async with scheduler:
                await scheduler.submit(0)

        asyncio.run(go())
        assert scheduler.stats()["resilience"]["counts"].get("hedges", 0) == 0


class TestRetryAndBreaker:
    def test_failed_batch_retries_once_on_fresh_session(self):
        fast = StubSession()
        flaky = StubSession(fail_times=1, fresh_session=fast)
        scheduler = BatchScheduler(
            flaky,
            max_batch=4,
            result_cache=None,
            resilience=ResiliencePolicy(hedge=False, supervise=False),
        )

        async def go():
            async with scheduler:
                result = await scheduler.submit(3)
                assert result.root == 3

        asyncio.run(go())
        counts = scheduler.stats()["resilience"]["counts"]
        assert counts["retries"] == 1
        assert flaky.fresh_calls == 1
        assert fast.batches == [[3]]

    def test_breaker_opens_after_consecutive_failures(self):
        broken = StubSession(fail_times=100)
        broken.fresh_session = broken  # retries land on the same wreck
        scheduler = BatchScheduler(
            broken,
            max_batch=4,
            result_cache=None,
            resilience=ResiliencePolicy(
                hedge=False,
                supervise=False,
                breaker_threshold=2,
                breaker_cooldown_s=60.0,
            ),
        )

        async def go():
            async with scheduler:
                for _ in range(2):
                    with pytest.raises(RuntimeError):
                        await scheduler.submit(1)
                with pytest.raises(ServeOverloadError) as err:
                    await scheduler.submit(1)
                assert err.value.context["reason"] == "circuit_open"

        asyncio.run(go())
        resil = scheduler.stats()["resilience"]
        assert resil["breaker"]["trips"] == 1
        assert resil["breaker"]["fast_fails"] == 1
        assert resil["counts"]["batch_failures"] == 2

    def test_deadline_cancel_is_not_a_breaker_failure(self):
        class CancelAware(StubSession):
            def run_batch(self, sources, cancel=None):
                raise DeadlineExceededError("cancelled", where="test")

        scheduler = BatchScheduler(
            CancelAware(),
            max_batch=1,
            result_cache=None,
            resilience=ResiliencePolicy(
                hedge=False,
                supervise=False,
                breaker_threshold=1,
                breaker_cooldown_s=60.0,
            ),
        )

        async def go():
            async with scheduler:
                with pytest.raises(DeadlineExceededError):
                    await scheduler.submit(0, deadline_ms=10_000.0)

        asyncio.run(go())
        assert scheduler.stats()["resilience"]["breaker"]["trips"] == 0


class TestSupervision:
    def _plan(self, kills: int):
        return FaultPlan(
            seed=0,
            serve=(ServeFault(kind="dispatcher-kill", count=kills),),
        )

    def test_dispatcher_restart_replays_exactly_once(self):
        session = StubSession()
        injector = ServeFaultInjector(self._plan(1), armed=True)
        scheduler = BatchScheduler(
            session,
            max_batch=4,
            result_cache=None,
            resilience=ResiliencePolicy(
                hedge=False,
                restart_backoff_s=0.01,
                restart_backoff_max_s=0.02,
            ),
            faults=injector,
        )

        async def go():
            async with scheduler:
                result = await scheduler.submit(5)
                assert result.root == 5
                healthy, detail = scheduler.health()
                assert healthy and detail["state"] == "running"

        asyncio.run(go())
        counts = scheduler.stats()["resilience"]["counts"]
        assert counts["restarts"] == 1
        assert counts["replayed"] == 1
        assert session.batches == [[5]]  # ran once, not twice
        assert (
            scheduler.metrics.counter("serve.dispatcher_restarts_total").value
            == 1
        )

    def test_query_lost_twice_is_rejected(self):
        session = StubSession()
        injector = ServeFaultInjector(self._plan(2), armed=True)
        scheduler = BatchScheduler(
            session,
            max_batch=4,
            result_cache=None,
            resilience=ResiliencePolicy(
                hedge=False,
                restart_backoff_s=0.01,
                restart_backoff_max_s=0.02,
            ),
            faults=injector,
        )

        async def go():
            async with scheduler:
                with pytest.raises(ServeOverloadError) as err:
                    await scheduler.submit(5)
                assert err.value.context["reason"] == "replay_exhausted"

        asyncio.run(go())
        assert scheduler.stats()["resilience"]["counts"]["replayed"] == 1
        assert session.batches == []

    def test_supervisor_gives_up_after_max_restarts(self):
        session = StubSession()
        injector = ServeFaultInjector(self._plan(50), armed=True)
        scheduler = BatchScheduler(
            session,
            max_batch=4,
            result_cache=None,
            resilience=ResiliencePolicy(
                hedge=False,
                restart_backoff_s=0.005,
                restart_backoff_max_s=0.01,
                max_restarts=2,
            ),
            faults=injector,
        )

        async def go():
            async with scheduler:
                # Crashes 1 and 2 lose the first query twice.
                with pytest.raises(ServeOverloadError) as err:
                    await scheduler.submit(5)
                assert err.value.context["reason"] == "replay_exhausted"
                # Crash 3 exceeds max_restarts=2: the supervisor gives
                # up and fails the pending query instead of restarting.
                with pytest.raises(ServeOverloadError) as err:
                    await scheduler.submit(6)
                assert err.value.context["reason"] == "shutdown"
                healthy, detail = scheduler.health()
                assert not healthy
                assert detail["state"] == "failed"
                assert detail["restarts"] == 2

        asyncio.run(go())


class TestShutdownDraining:
    def test_stop_with_dead_dispatcher_rejects_pending(self):
        """Satellite: crashed-dispatcher shutdown hangs nothing and
        drops no futures."""
        session = StubSession()
        injector = ServeFaultInjector(
            FaultPlan(
                seed=0,
                serve=(ServeFault(kind="dispatcher-kill", count=99),),
            ),
            armed=True,
        )
        scheduler = BatchScheduler(
            session,
            max_batch=4,
            result_cache=None,
            resilience=ResiliencePolicy(hedge=False, supervise=False),
            faults=injector,
        )

        async def go():
            await scheduler.start()
            pending = asyncio.ensure_future(scheduler.submit(1))
            await asyncio.sleep(0.05)  # dispatcher crashes on pickup
            healthy, detail = scheduler.health()
            assert not healthy and detail["state"] == "crashed"
            await asyncio.wait_for(scheduler.stop(), timeout=5.0)
            with pytest.raises(ServeOverloadError) as err:
                await pending
            assert err.value.context["reason"] == "shutdown"

        asyncio.run(go())
        assert not scheduler.running

    def test_stop_drains_queued_work(self):
        release = threading.Event()
        session = StubSession(release=release)
        scheduler = BatchScheduler(
            session,
            max_batch=2,
            max_wait_ms=0.0,
            result_cache=None,
            resilience=ResiliencePolicy(hedge=False, supervise=False),
        )

        async def go():
            await scheduler.start()
            futures = [
                asyncio.ensure_future(scheduler.submit(i)) for i in range(6)
            ]
            await asyncio.sleep(0.02)
            release.set()
            await asyncio.wait_for(scheduler.stop(), timeout=10.0)
            results = await asyncio.gather(*futures)
            assert [r.root for r in results] == list(range(6))

        asyncio.run(go())


class TestPoisonDetection:
    def test_poisoned_cache_entry_is_dropped_and_recomputed(self):
        session = StubSession()
        cache = ResultCache(maxsize=8)
        scheduler = BatchScheduler(
            session,
            max_batch=4,
            result_cache=cache,
            resilience=ResiliencePolicy(hedge=False, supervise=False),
        )
        cache.put(scheduler._key(4), StubResult(root=5))  # wrong root

        async def go():
            async with scheduler:
                result = await scheduler.submit(4)
                assert result.root == 4  # recomputed, not the poison

        asyncio.run(go())
        counts = scheduler.stats()["resilience"]["counts"]
        assert counts["poison_detected"] == 1
        assert (
            scheduler.metrics.counter(
                "serve.cache_poison_detected_total"
            ).value
            == 1
        )
        assert session.batches == [[4]]


class TestPreparedCacheBounds:
    def test_byte_bound_evicts(self):
        cluster = paper_cluster(nodes=1)
        service = BFSService(
            cache=PreparedGraphCache(maxsize=4, max_bytes=1),
            cluster=cluster,
        )
        g1 = rmat_graph(scale=10, edgefactor=4, seed=1)
        g2 = rmat_graph(scale=10, edgefactor=4, seed=2)
        service.session(g1)
        stats = service.prepared_stats()
        assert stats["entries"] == 1 and stats["bytes"] > 0
        service.session(g2)  # over the byte bound: g1 is evicted
        assert service.prepared_stats()["entries"] == 1
        service.session(g1)
        assert service.prepared_stats()["misses"] == 3

    def test_validation(self):
        with pytest.raises(ConfigError):
            PreparedGraphCache(max_bytes=0)


class TestLoadgenAccounting:
    def test_deadline_expiry_is_tallied_not_raised(self):
        session = StubSession(delay_s=0.08)
        result = run_load(
            session,
            roots=[1, 2],
            max_batch=1,
            max_wait_ms=0.0,
            result_cache=None,
            resilience=ResiliencePolicy(hedge=False, supervise=False),
            deadline_ms=25.0,
        )
        # Query 1 rides the first batch; query 2 waits 80ms in the
        # queue, well past its 25ms deadline, and is shed at pickup.
        assert result.queries == 2
        assert result.deadline_expired == 1
        assert result.rejected == 0
        assert result.completed == 1
        doc = result.as_dict()
        assert doc["deadline_expired"] == 1 and doc["deadline_ms"] == 25.0

    def test_deadline_validation(self):
        with pytest.raises(ConfigError):
            run_load(StubSession(), roots=[1], deadline_ms=0.0)

    def test_report_carries_resilience_block(self):
        session = StubSession(delay_s=0.08)
        result = run_load(
            session,
            roots=[1, 2],
            max_batch=1,
            max_wait_ms=0.0,
            result_cache=None,
            resilience=ResiliencePolicy(hedge=False, supervise=False),
            deadline_ms=25.0,
        )
        report = build_report({}, {}, result, {"hit_rate": 0.0})
        resil = report["resilience"]
        assert resil["deadline_expired"] == 1
        assert resil["deadline_ms"] == 25.0
        assert resil["policy"]["shed_policy"] == "reject"
        assert report["throughput"]["completed"] == 1

    def test_no_policy_report_has_none_block(self):
        session = StubSession()
        result = run_load(
            session, roots=[1], max_batch=1, result_cache=None
        )
        report = build_report({}, {}, result, {"hit_rate": 0.0})
        assert report["resilience"] is None


class TestSessionBoundaryValidation:
    """Satellite: every serve entry point rejects bad vertices with a
    structured error, not a numpy IndexError from inside the kernel."""

    @pytest.fixture(scope="class")
    def real_session(self):
        from repro.graph.rmat import rmat_graph

        service = BFSService(cluster=paper_cluster(nodes=1))
        return service.session(rmat_graph(scale=10, edgefactor=8, seed=5))

    def _assert_structured(self, err, bad, n):
        from repro.errors import GraphError

        assert isinstance(err, GraphError)
        assert err.context["vertex"] == bad
        assert err.context["num_vertices"] == n
        assert "out of range" in str(err)

    def test_session_run(self, real_session):
        from repro.errors import GraphError

        n = real_session.graph.num_vertices
        with pytest.raises(GraphError) as excinfo:
            real_session.run(n + 7)
        self._assert_structured(excinfo.value, n + 7, n)

    def test_session_run_negative(self, real_session):
        from repro.errors import GraphError

        n = real_session.graph.num_vertices
        with pytest.raises(GraphError) as excinfo:
            real_session.run(-1)
        self._assert_structured(excinfo.value, -1, n)

    def test_session_run_batch(self, real_session):
        from repro.errors import GraphError

        n = real_session.graph.num_vertices
        with pytest.raises(GraphError) as excinfo:
            real_session.run_batch([0, 1, n])
        self._assert_structured(excinfo.value, n, n)

    def test_scheduler_submit(self, real_session):
        from repro.errors import GraphError

        n = real_session.graph.num_vertices
        scheduler = BatchScheduler(
            real_session, max_batch=4, result_cache=None
        )

        async def go():
            async with scheduler:
                with pytest.raises(GraphError) as excinfo:
                    await scheduler.submit(n + 1)
                self._assert_structured(excinfo.value, n + 1, n)
                # The scheduler survives the rejection and still serves.
                result = await scheduler.submit(1)
                assert int(result.root) == 1

        asyncio.run(go())
