"""Request-scoped serving traces: every request resolves to a chain."""

import asyncio

import pytest

from repro.core.prepared import PreparedGraphCache
from repro.graph.rmat import rmat_graph
from repro.machine.spec import paper_cluster
from repro.obs.export import request_chain, serve_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, SpanTracer
from repro.serve.scheduler import BatchScheduler
from repro.serve.session import BFSService

SCALE = 10


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=SCALE, edgefactor=8, seed=5)


@pytest.fixture(scope="module")
def cluster():
    return paper_cluster(nodes=1)


def traced_scheduler(graph, cluster, **kwargs):
    tracer = SpanTracer()
    service = BFSService(cache=PreparedGraphCache(maxsize=4), cluster=cluster)
    session = service.session(graph, tracer=tracer)
    scheduler = BatchScheduler(session, tracer=tracer, **kwargs)
    return scheduler, tracer


async def _serve(scheduler, waves):
    """Submit each wave concurrently, waves sequentially."""
    results = []
    async with scheduler:
        for wave in waves:
            results.extend(
                await asyncio.gather(
                    *(scheduler.submit(s) for s in wave)
                )
            )
    return results


def served_trace_ids(spans):
    """Every trace id the scheduler stamped on a request span."""
    return sorted(
        sp.attrs["trace_id"]
        for sp in spans
        if sp.name in ("serve.queue_wait", "serve.cache_hit")
    )


class TestRequestChains:
    def test_every_request_resolves(self, graph, cluster):
        scheduler, tracer = traced_scheduler(
            graph, cluster, max_batch=4, max_wait_ms=5.0
        )
        # Second wave repeats sources: result-cache hits; the repeat
        # inside wave one coalesces into a shared lane.
        waves = [[3, 9, 3, 17], [9, 17, 21]]
        asyncio.run(_serve(scheduler, waves))
        ids = served_trace_ids(tracer.spans)
        assert len(ids) == 7  # one per submitted query
        assert len(set(ids)) == 7
        chains = [request_chain(tracer.spans, tid) for tid in ids]
        hits = [c for c in chains if c["cache_hit"]]
        cold = [c for c in chains if not c["cache_hit"]]
        assert len(hits) == 2  # 9 and 17 served from the result cache
        for chain in cold:
            assert chain["batch_id"] is not None
            assert chain["levels"], "run recorded no batch.level spans"

    def test_coalesced_waiters_share_a_lane(self, graph, cluster):
        scheduler, tracer = traced_scheduler(
            graph, cluster, max_batch=4, max_wait_ms=5.0
        )
        asyncio.run(_serve(scheduler, [[5, 5, 5]]))
        ids = served_trace_ids(tracer.spans)
        chains = [request_chain(tracer.spans, tid) for tid in ids]
        lanes = {(c["batch_id"], c["lane"]) for c in chains}
        assert len(chains) == 3 and len(lanes) == 1
        (lane_span,) = [
            sp for sp in tracer.spans if sp.name == "batch.lane"
        ]
        assert sorted(lane_span.attrs["trace_ids"]) == ids

    def test_unknown_trace_id_raises(self, graph, cluster):
        scheduler, tracer = traced_scheduler(graph, cluster)
        asyncio.run(_serve(scheduler, [[3]]))
        with pytest.raises(ValueError, match="no span"):
            request_chain(tracer.spans, "req-999999")

    def test_untraced_session_records_nothing(self, graph, cluster):
        service = BFSService(
            cache=PreparedGraphCache(maxsize=4), cluster=cluster
        )
        session = service.session(graph)
        scheduler = BatchScheduler(session)
        assert scheduler.tracer is NULL_TRACER
        asyncio.run(_serve(scheduler, [[3, 9]]))
        assert scheduler.queries == 2


class TestBatchSpans:
    def test_run_and_level_spans_linked(self, graph, cluster):
        scheduler, tracer = traced_scheduler(
            graph, cluster, max_batch=4, max_wait_ms=5.0
        )
        asyncio.run(_serve(scheduler, [[3, 9]]))
        (run,) = [sp for sp in tracer.spans if sp.name == "batch.run"]
        assert run.attrs["lanes"] == 2
        assert sorted(run.attrs["sources"]) == [3, 9]
        levels = [
            sp
            for sp in tracer.spans
            if sp.name == "batch.level" and sp.parent == run.index
        ]
        assert levels
        assert [sp.attrs["round"] for sp in levels] == list(
            range(len(levels))
        )
        for sp in levels:
            assert "top_down" in sp.attrs and "bottom_up" in sp.attrs

    def test_queue_wait_span_brackets_pickup(self, graph, cluster):
        scheduler, tracer = traced_scheduler(graph, cluster)
        asyncio.run(_serve(scheduler, [[3]]))
        (wait,) = [
            sp for sp in tracer.spans if sp.name == "serve.queue_wait"
        ]
        assert wait.end_ns >= wait.start_ns > 0
        assert wait.attrs["source"] == 3


class TestServeChromeTrace:
    def test_lane_labels_and_request_tracks(self, graph, cluster):
        scheduler, tracer = traced_scheduler(
            graph, cluster, max_batch=4, max_wait_ms=5.0
        )
        asyncio.run(_serve(scheduler, [[3, 9], [3]]))
        doc = serve_chrome_trace(tracer)
        events = doc["traceEvents"]
        lanes = [
            e for e in events if e.get("name", "").startswith("lane ")
        ]
        assert {e["name"] for e in lanes} == {"lane 0 src 3", "lane 1 src 9"}
        for e in lanes:
            assert e["args"]["source"] in (3, 9)
        # Request-scoped spans ride their own named track.
        thread_names = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        }
        assert "pipeline" in thread_names
        assert {"req-000000", "req-000001", "req-000002"} <= thread_names
        request_events = [
            e for e in events if e.get("cat") == "request"
        ]
        assert all(e["tid"] >= 1 for e in request_events)

    def test_timestamps_normalized(self, graph, cluster):
        scheduler, tracer = traced_scheduler(graph, cluster)
        asyncio.run(_serve(scheduler, [[3]]))
        doc = serve_chrome_trace(tracer)
        ts = [
            e["ts"]
            for e in doc["traceEvents"]
            if e.get("ph") in ("X", "i")
        ]
        assert min(ts) == 0.0


class TestMetricsFromServing:
    def test_counters_and_gauges_settle(self, graph, cluster):
        registry = MetricsRegistry()
        service = BFSService(
            cache=PreparedGraphCache(maxsize=4), cluster=cluster
        )
        session = service.session(graph)
        scheduler = BatchScheduler(session, metrics=registry)
        asyncio.run(_serve(scheduler, [[3, 9], [3]]))
        assert registry.counter("serve.requests_total").value == 3.0
        assert registry.counter("serve.result_cache.hits").value == 1.0
        assert registry.gauge("serve.queue_depth").value == 0.0
        assert registry.gauge("serve.inflight_batches").value == 0.0
        assert registry.histogram("serve.latency_ms").count == 3
