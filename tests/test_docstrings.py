"""Documentation quality gate: every public module, class and function
in the library carries a docstring.

The deliverables call for doc comments on every public item; this test
makes that a checked invariant rather than a hope.
"""

import importlib
import inspect
import pkgutil

import repro

EXEMPT_MODULES = set()


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in EXEMPT_MODULES:
            continue
        yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_every_module_has_docstring():
    undocumented = [
        m.__name__ for m in iter_modules() if not (m.__doc__ or "").strip()
    ]
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_every_public_class_and_function_has_docstring():
    undocumented = []
    for module in iter_modules():
        for name, obj in public_members(module):
            if not (obj.__doc__ or "").strip():
                undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, (
        f"public items without docstrings: {undocumented}"
    )


def test_public_classes_document_public_methods():
    undocumented = []
    for module in iter_modules():
        for cname, cls in public_members(module):
            if not inspect.isclass(cls):
                continue
            for mname, member in vars(cls).items():
                if mname.startswith("_"):
                    continue
                func = member
                if isinstance(member, (classmethod, staticmethod)):
                    func = member.__func__
                elif isinstance(member, property):
                    func = member.fget
                if not inspect.isfunction(func):
                    continue
                if not (func.__doc__ or "").strip():
                    undocumented.append(
                        f"{module.__name__}.{cname}.{mname}"
                    )
    assert not undocumented, (
        f"public methods without docstrings: {undocumented}"
    )
