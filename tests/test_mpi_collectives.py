"""Tests for the simulated communicator and the allgather family.

Correctness: every algorithm must produce the same gathered data.
Timing: the qualitative orderings the paper relies on must hold
(intra-node leader steps dominate, sharing removes steps, parallel
subgroups beat a single leader flow).
"""

import numpy as np
import pytest

from repro.errors import CommunicationError
from repro.machine import paper_cluster
from repro.machine.spec import MB
from repro.mpi import (
    AllgatherAlgorithm,
    BindingPolicy,
    NodeSharedBuffer,
    ProcessMapping,
    SimComm,
    allgather,
)


def make_comm(nodes=4, ppn=8, policy=BindingPolicy.BIND_TO_SOCKET):
    cluster = paper_cluster(nodes=nodes)
    if ppn == 1 and policy is BindingPolicy.BIND_TO_SOCKET:
        policy = BindingPolicy.INTERLEAVE
    mapping = ProcessMapping(cluster, ppn=ppn, policy=policy)
    return SimComm(cluster, mapping)


def make_parts(comm, words_per_rank=64, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 2**63, size=words_per_rank).astype(np.uint64)
        for _ in range(comm.num_ranks)
    ]


def shared_bufs(comm, total_words):
    return [
        NodeSharedBuffer(n, total_words) for n in range(comm.cluster.nodes)
    ]


PRIVATE_ALGOS = [
    AllgatherAlgorithm.RING,
    AllgatherAlgorithm.RECURSIVE_DOUBLING,
    AllgatherAlgorithm.DEFAULT,
    AllgatherAlgorithm.LEADER,
]
SHARED_ALGOS = [
    AllgatherAlgorithm.SHARED_IN,
    AllgatherAlgorithm.SHARED_ALL,
    AllgatherAlgorithm.PARALLEL_SHARED,
]


class TestAllgatherCorrectness:
    @pytest.mark.parametrize("algo", PRIVATE_ALGOS)
    def test_private_algorithms_gather_identically(self, algo):
        comm = make_comm()
        parts = make_parts(comm)
        expected = np.concatenate(parts)
        res = allgather(comm, parts, algo)
        assert np.array_equal(res.data, expected)
        assert not res.data.flags.writeable

    @pytest.mark.parametrize("algo", SHARED_ALGOS)
    def test_shared_algorithms_fill_every_node(self, algo):
        comm = make_comm()
        parts = make_parts(comm)
        expected = np.concatenate(parts)
        bufs = shared_bufs(comm, expected.size)
        res = allgather(comm, parts, algo, shared_buffers=bufs)
        assert res.data is bufs
        for buf in bufs:
            assert np.array_equal(buf.data, expected)

    def test_unequal_parts(self):
        comm = make_comm(nodes=2, ppn=8)
        parts = [
            np.full(8 + (r % 3), r, dtype=np.uint64)
            for r in range(comm.num_ranks)
        ]
        res = allgather(comm, parts, AllgatherAlgorithm.RING)
        assert np.array_equal(res.data, np.concatenate(parts))

    def test_single_rank(self):
        comm = make_comm(nodes=1, ppn=1, policy=BindingPolicy.INTERLEAVE)
        parts = [np.arange(16, dtype=np.uint64)]
        res = allgather(comm, parts, AllgatherAlgorithm.RING)
        assert np.array_equal(res.data, parts[0])
        assert res.max_time == 0.0

    def test_wrong_part_count_rejected(self):
        comm = make_comm()
        with pytest.raises(CommunicationError):
            allgather(comm, [np.zeros(1, np.uint64)], AllgatherAlgorithm.RING)

    def test_shared_requires_buffers(self):
        comm = make_comm()
        with pytest.raises(CommunicationError):
            allgather(comm, make_parts(comm), AllgatherAlgorithm.SHARED_IN)

    def test_shared_buffer_size_checked(self):
        comm = make_comm()
        parts = make_parts(comm)
        bufs = shared_bufs(comm, 3)
        with pytest.raises(CommunicationError):
            allgather(comm, parts, AllgatherAlgorithm.SHARED_ALL, bufs)


class TestAllgatherTiming:
    def test_leader_intra_dominates_for_large_payload(self):
        """Fig. 6: at 16 nodes x 8 ppn with 512 MB, steps 1+3 (intra)
        exceed step 2 (inter)."""
        comm = make_comm(nodes=16, ppn=8)
        words = 512 * MB // 8 // comm.num_ranks
        parts = [np.zeros(words, np.uint64) for _ in range(comm.num_ranks)]
        res = allgather(comm, parts, AllgatherAlgorithm.LEADER)
        intra = res.breakdown["intra_gather"] + res.breakdown["intra_bcast"]
        inter = res.breakdown["inter"]
        assert intra > inter

    def test_sharing_removes_steps(self):
        comm = make_comm(nodes=8, ppn=8)
        words = 64 * MB // 8 // comm.num_ranks
        parts = [np.zeros(words, np.uint64) for _ in range(comm.num_ranks)]
        total = words * comm.num_ranks

        leader = allgather(comm, parts, AllgatherAlgorithm.LEADER)
        sin = allgather(
            comm, parts, AllgatherAlgorithm.SHARED_IN, shared_bufs(comm, total)
        )
        sall = allgather(
            comm, parts, AllgatherAlgorithm.SHARED_ALL, shared_bufs(comm, total)
        )
        par = allgather(
            comm,
            parts,
            AllgatherAlgorithm.PARALLEL_SHARED,
            shared_bufs(comm, total),
        )
        assert sin.breakdown["intra_bcast"] == 0.0
        assert sall.breakdown["intra_gather"] == 0.0
        # Each optimization strictly reduces total time (Fig. 13 ordering).
        assert leader.max_time > sin.max_time > sall.max_time > par.max_time

    def test_parallel_subgroups_accelerate_inter_step(self):
        """Fig. 7 / Fig. 4: eight concurrent flows saturate both IB ports
        where one leader flow reaches only ~half of peak."""
        comm = make_comm(nodes=8, ppn=8)
        words = 64 * MB // 8 // comm.num_ranks
        parts = [np.zeros(words, np.uint64) for _ in range(comm.num_ranks)]
        total = words * comm.num_ranks
        seq = allgather(
            comm, parts, AllgatherAlgorithm.SHARED_ALL, shared_bufs(comm, total)
        )
        par = allgather(
            comm,
            parts,
            AllgatherAlgorithm.PARALLEL_SHARED,
            shared_bufs(comm, total),
        )
        ratio = seq.breakdown["inter"] / par.breakdown["inter"]
        assert 1.5 < ratio < 2.5

    def test_default_picks_by_size(self):
        comm = make_comm(nodes=2, ppn=8)
        small = [np.zeros(4, np.uint64) for _ in range(comm.num_ranks)]
        big = [np.zeros(64 * 1024, np.uint64) for _ in range(comm.num_ranks)]
        res_small = allgather(comm, small, AllgatherAlgorithm.DEFAULT)
        res_big = allgather(comm, big, AllgatherAlgorithm.DEFAULT)
        assert "recursive_doubling" in res_small.breakdown
        assert "ring" in res_big.breakdown

    def test_more_processes_cost_more_ring_time(self):
        """Eq. 1: total transmitted data grows with np; ppn=8 ring is far
        more expensive than ppn=1 for the same total payload."""
        total_words = 4 * MB // 8
        t = {}
        for ppn in (1, 8):
            comm = make_comm(nodes=8, ppn=ppn)
            words = total_words // comm.num_ranks
            parts = [np.zeros(words, np.uint64) for _ in range(comm.num_ranks)]
            t[ppn] = allgather(comm, parts, AllgatherAlgorithm.RING).max_time
        assert t[8] > 1.5 * t[1]

    def test_weak_node_slows_inter_step(self):
        words = 1 * MB // 8
        comm_ok = make_comm(nodes=8, ppn=8)
        cluster_weak = paper_cluster(nodes=8, weak_node=True)
        mapping = ProcessMapping(cluster_weak, ppn=8)
        comm_weak = SimComm(cluster_weak, mapping)
        parts = lambda c: [  # noqa: E731
            np.zeros(words, np.uint64) for _ in range(c.num_ranks)
        ]
        t_ok = allgather(comm_ok, parts(comm_ok), AllgatherAlgorithm.LEADER)
        t_weak = allgather(comm_weak, parts(comm_weak), AllgatherAlgorithm.LEADER)
        assert t_weak.breakdown["inter"] > t_ok.breakdown["inter"]

    def test_zero_bytes_costs_nothing(self):
        comm = make_comm(nodes=2, ppn=8)
        parts = [np.zeros(0, np.uint64) for _ in range(comm.num_ranks)]
        res = allgather(comm, parts, AllgatherAlgorithm.RING)
        assert res.max_time == 0.0


class TestSimCommPrimitives:
    def test_barrier_stalls(self):
        comm = make_comm(nodes=2, ppn=8)
        clocks = np.arange(comm.num_ranks, dtype=float)
        stalls = comm.barrier(clocks)
        assert stalls.max() == clocks.max()
        assert stalls[np.argmax(clocks)] == 0.0

    def test_barrier_shape_checked(self):
        comm = make_comm(nodes=2, ppn=8)
        with pytest.raises(CommunicationError):
            comm.barrier(np.zeros(3))

    def test_allreduce_sum(self):
        comm = make_comm(nodes=2, ppn=8)
        values = np.arange(comm.num_ranks)
        res = comm.allreduce_sum(values)
        assert res.data == values.sum()
        assert res.max_time > 0

    def test_allreduce_max(self):
        comm = make_comm(nodes=2, ppn=8)
        res = comm.allreduce_max(np.arange(comm.num_ranks))
        assert res.data == comm.num_ranks - 1

    def test_allreduce_shape_checked(self):
        comm = make_comm(nodes=2, ppn=8)
        with pytest.raises(CommunicationError):
            comm.allreduce_sum(np.zeros(2))

    def test_alltoallv_routes_messages(self):
        comm = make_comm(nodes=2, ppn=2)
        n = comm.num_ranks
        send = [
            [np.array([i * 100 + j], dtype=np.int64) for j in range(n)]
            for i in range(n)
        ]
        res = comm.alltoallv(send)
        for j in range(n):
            for i in range(n):
                assert res.data[j][i][0] == i * 100 + j

    def test_alltoallv_empty_messages_free(self):
        comm = make_comm(nodes=2, ppn=2)
        n = comm.num_ranks
        send = [[np.zeros(0, np.int64) for _ in range(n)] for _ in range(n)]
        res = comm.alltoallv(send)
        assert res.max_time == 0.0

    def test_alltoallv_shape_checked(self):
        comm = make_comm(nodes=2, ppn=2)
        with pytest.raises(CommunicationError):
            comm.alltoallv([[np.zeros(0, np.int64)]])

    def test_inter_faster_than_intra_for_small_latency(self):
        """Sanity: shm copies have lower latency but lower per-flow
        bandwidth than IB under heavy contention."""
        comm = make_comm(nodes=2, ppn=8)
        assert comm.shm_copy_time(0) == 0.0
        assert comm.inter_node_time(0) == 0.0
        big = 64 * MB
        assert comm.shm_copy_time(big, 7) > comm.inter_node_time(big, 1)
