"""Unit and property tests for repro.util.segments (the vectorized kernels
behind the bottom-up BFS early-exit accounting)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import segments


def brute_first_true(mask, offsets):
    out = []
    for s in range(len(offsets) - 1):
        seg = mask[offsets[s] : offsets[s + 1]]
        hits = np.flatnonzero(seg)
        out.append(offsets[s] + hits[0] if hits.size else -1)
    return np.array(out, dtype=np.int64)


def brute_examined(mask, offsets):
    out = []
    for s in range(len(offsets) - 1):
        seg = mask[offsets[s] : offsets[s + 1]]
        count = 0
        for v in seg:
            count += 1
            if v:
                break
        out.append(count)
    return np.array(out, dtype=np.int64)


class TestSegmentIds:
    def test_basic(self):
        ids = segments.segment_ids(np.array([0, 2, 2, 5]))
        assert ids.tolist() == [0, 0, 2, 2, 2]

    def test_empty_segments_only(self):
        ids = segments.segment_ids(np.array([0, 0, 0]))
        assert ids.size == 0


class TestOffsetsValidation:
    def test_bad_start(self):
        with pytest.raises(ValueError):
            segments.segment_first_true(np.zeros(3, bool), np.array([1, 3]))

    def test_bad_end(self):
        with pytest.raises(ValueError):
            segments.segment_first_true(np.zeros(3, bool), np.array([0, 2]))

    def test_decreasing(self):
        with pytest.raises(ValueError):
            segments.segment_first_true(
                np.zeros(3, bool), np.array([0, 2, 1, 3])
            )


class TestFirstTrue:
    def test_mixed(self):
        mask = np.array([0, 1, 0, 0, 1, 1, 0], dtype=bool)
        offsets = np.array([0, 2, 4, 7])
        assert segments.segment_first_true(mask, offsets).tolist() == [1, -1, 4]

    def test_no_hits(self):
        mask = np.zeros(5, dtype=bool)
        offsets = np.array([0, 3, 5])
        assert segments.segment_first_true(mask, offsets).tolist() == [-1, -1]

    def test_empty_segment(self):
        mask = np.array([1], dtype=bool)
        offsets = np.array([0, 0, 1, 1])
        assert segments.segment_first_true(mask, offsets).tolist() == [-1, 0, -1]

    def test_all_empty_mask(self):
        offsets = np.array([0, 0, 0])
        out = segments.segment_first_true(np.zeros(0, bool), offsets)
        assert out.tolist() == [-1, -1]


class TestAnyAndSums:
    def test_any(self):
        mask = np.array([0, 0, 1, 0], dtype=bool)
        offsets = np.array([0, 2, 4])
        assert segments.segment_any(mask, offsets).tolist() == [False, True]

    def test_sums(self):
        vals = np.array([1, 2, 3, 4, 5])
        offsets = np.array([0, 2, 2, 5])
        assert segments.segment_sums(vals, offsets).tolist() == [3, 0, 12]

    def test_sums_empty(self):
        out = segments.segment_sums(np.array([]), np.array([0, 0]))
        assert out.tolist() == [0]


class TestExaminedCounts:
    def test_early_exit_semantics(self):
        # Segment [1,0,1]: scan stops at element 0 -> 1 examined.
        # Segment [0,0]: no hit -> 2 examined.
        # Segment [0,1]: hit at second -> 2 examined.
        mask = np.array([1, 0, 1, 0, 0, 0, 1], dtype=bool)
        offsets = np.array([0, 3, 5, 7])
        out = segments.segment_counts_until_first_true(mask, offsets)
        assert out.tolist() == [1, 2, 2]

    def test_empty_segment_examines_zero(self):
        mask = np.array([1], dtype=bool)
        offsets = np.array([0, 0, 1])
        out = segments.segment_counts_until_first_true(mask, offsets)
        assert out.tolist() == [0, 1]


@st.composite
def mask_and_offsets(draw):
    nseg = draw(st.integers(min_value=1, max_value=12))
    lengths = draw(
        st.lists(
            st.integers(min_value=0, max_value=8),
            min_size=nseg,
            max_size=nseg,
        )
    )
    offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    n = int(offsets[-1])
    mask = np.array(
        draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    return mask, offsets


@settings(max_examples=120, deadline=None)
@given(mask_and_offsets())
def test_property_first_true_matches_bruteforce(case):
    mask, offsets = case
    got = segments.segment_first_true(mask, offsets)
    assert np.array_equal(got, brute_first_true(mask, offsets))


@settings(max_examples=120, deadline=None)
@given(mask_and_offsets())
def test_property_examined_matches_bruteforce(case):
    mask, offsets = case
    got = segments.segment_counts_until_first_true(mask, offsets)
    assert np.array_equal(got, brute_examined(mask, offsets))
