"""The ``repro-serve`` CLI: report shape, artifacts, ledger append."""

import json

import pytest

from repro.serve.cli import main
from repro.serve.report import (
    SCHEMA,
    build_report,
    record_for_serve_report,
)

ARGS = [
    "--scale", "10",
    "--nodes", "1",
    "--queries", "24",
    "--root-pool", "4",
    "--max-batch", "8",
    "--graph-seed", "5",
]


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    """One small campaign, reused by every assertion below."""
    out = tmp_path_factory.mktemp("serve") / "report.json"
    exit_code = main(ARGS + ["--json", str(out)])
    assert exit_code == 0
    with open(out, encoding="utf-8") as fh:
        return json.load(fh)


class TestReportDocument:
    def test_schema_and_sections(self, report):
        assert report["schema"] == SCHEMA
        for section in (
            "workload",
            "load",
            "latency_ms",
            "throughput",
            "scheduler",
            "caches",
        ):
            assert section in report, section

    def test_latency_percentiles_present(self, report):
        latency = report["latency_ms"]
        assert latency["count"] == 24
        for q in ("p50", "p90", "p99"):
            assert latency[q] >= 0.0
        assert latency["p99"] >= latency["p50"]

    def test_throughput_block(self, report):
        throughput = report["throughput"]
        assert throughput["queries"] == 24
        assert throughput["qps_achieved"] > 0
        assert throughput["wall_seconds"] > 0

    def test_prepared_cache_hit_rate_nonzero(self, report):
        # The warm-up session misses, the serving session hits.
        assert report["caches"]["prepared"]["hit_rate"] > 0

    def test_workload_axes(self, report):
        workload = report["workload"]
        assert workload["scale"] == 10
        assert workload["num_vertices"] == 1024
        assert workload["graph_digest"]


class TestLedgerRecord:
    def test_record_carries_headline_metrics(self, report):
        record = record_for_serve_report(report, source="test")
        assert record.kind == "serve"
        assert record.name == "loadgen"
        assert record.labels["schema"] == SCHEMA
        assert "latency_p50_ms" in record.metrics
        assert "latency_p99_ms" in record.metrics
        assert record.metrics["queries"] == 24.0
        assert record.extra["report"]["schema"] == SCHEMA
        assert record.fingerprint

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="serve report"):
            record_for_serve_report({"schema": "repro.run/v1"})

    def test_cli_ledger_append(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path))
        assert main(ARGS + ["--ledger"]) == 0
        lines = (tmp_path / "runs.jsonl").read_text().splitlines()
        assert len(lines) == 1
        doc = json.loads(lines[0])
        assert doc["kind"] == "serve"
        assert doc["metrics"]["latency_p99_ms"] >= 0.0
        assert doc["labels"]["schema"] == SCHEMA


class TestLiveOps:
    def test_report_has_no_slo_without_flags(self, report):
        assert report["slo"] is None

    def test_campaign_with_ops_slo_and_trace(self, tmp_path):
        out = tmp_path / "report.json"
        trace = tmp_path / "trace.json"
        code = main(
            ARGS
            + [
                "--ops-port", "0",
                "--slo-p99-ms", "200",
                "--slo-error-rate", "0.01",
                "--trace-out", str(trace),
                "--json", str(out),
            ]
        )
        assert code == 0
        slo = json.loads(out.read_text())["slo"]
        assert slo["schema"] == "repro.slo/v1"
        assert slo["verdict"] in (
            "ok", "insufficient", "slow_burn", "fast_burn", "breach",
        )
        labels = {o["label"] for o in slo["objectives"]}
        assert labels == {"p99_le_200ms", "errors_le_1pct"}
        assert slo["totals"]["requests"] == 24.0
        doc = json.loads(trace.read_text())
        names = {e.get("name") for e in doc["traceEvents"]}
        assert "serve.batch_assembly" in names
        assert any(n and n.startswith("lane ") for n in names)

    def test_slo_ledger_record_appended(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path))
        assert main(ARGS + ["--ledger", "--slo-error-rate", "0.01"]) == 0
        docs = [
            json.loads(line)
            for line in (tmp_path / "runs.jsonl").read_text().splitlines()
        ]
        kinds = [d["kind"] for d in docs]
        assert kinds == ["serve", "slo"]
        slo_doc = docs[1]
        assert slo_doc["labels"]["source"] == "repro-serve"
        assert slo_doc["labels"]["verdict"] in ("ok", "insufficient")
        assert slo_doc["extra"]["objective_verdicts"]


class TestCompareSequential:
    def test_comparison_block(self, tmp_path):
        out = tmp_path / "cmp.json"
        code = main(ARGS + ["--compare-sequential", "--json", str(out)])
        assert code == 0
        with open(out, encoding="utf-8") as fh:
            report = json.load(fh)
        comparison = report["comparison"]
        assert comparison["roots"] == 8
        assert comparison["sequential_qps"] > 0
        assert comparison["batched_qps"] > 0
        assert comparison["speedup"] > 0


class TestBuildReport:
    def test_none_comparison_is_preserved(self):
        class _Fake:
            """Minimal stand-in for a LoadGenResult."""

            def as_dict(self):
                """The fields build_report consumes."""
                return {
                    "queries": 1,
                    "qps_offered": None,
                    "qps_achieved": 1.0,
                    "wall_seconds": 1.0,
                    "latency_ms": {},
                    "scheduler": {},
                    "distinct_roots": 1,
                }

        report = build_report({}, {}, _Fake(), {"hit_rate": 0.0})
        assert report["comparison"] is None
        assert report["schema"] == SCHEMA
