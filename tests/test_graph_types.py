"""Tests for graph types, the CSR builder and synthetic generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    EdgeList,
    build_graph,
    binary_tree_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    from_edge_arrays,
    grid_graph,
    path_graph,
    star_graph,
)


class TestEdgeList:
    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            EdgeList(4, np.array([0]), np.array([4]))

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            EdgeList(4, np.array([-1]), np.array([0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GraphError):
            EdgeList(4, np.array([0, 1]), np.array([1]))


class TestBuilder:
    def test_self_loops_dropped(self):
        g = from_edge_arrays(3, [0, 1, 2], [0, 2, 2])
        assert g.num_edges == 1
        assert g.has_edge(1, 2)
        assert not g.has_edge(0, 0)

    def test_duplicates_merged(self):
        g = from_edge_arrays(3, [0, 0, 1], [1, 1, 0])
        assert g.num_edges == 1
        assert g.degree(0) == 1

    def test_symmetrized(self):
        g = from_edge_arrays(3, [0], [1])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.num_directed_edges == 2

    def test_adjacency_sorted(self):
        g = from_edge_arrays(5, [2, 2, 2], [4, 0, 3])
        assert g.neighbors(2).tolist() == [0, 3, 4]

    def test_empty_graph(self):
        g = from_edge_arrays(4, [], [])
        assert g.num_edges == 0
        assert g.degrees().tolist() == [0, 0, 0, 0]

    def test_memory_bytes_positive(self):
        g = path_graph(10)
        assert g.memory_bytes() > 0


class TestGraphAccessors:
    def test_neighbors_out_of_range(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            g.neighbors(3)

    def test_degree_vectorized(self):
        g = star_graph(5)
        assert g.degree(np.array([0, 1])).tolist() == [4, 1]

    def test_offsets_must_match(self):
        with pytest.raises(GraphError):
            from repro.graph.types import Graph

            Graph(3, np.array([0, 1], dtype=np.int64), np.zeros(1, np.int64))


class TestGenerators:
    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.degrees().tolist() == [1, 2, 2, 2, 1]

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert np.all(g.degrees() == 2)

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 6
        assert g.num_edges == 6

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 10
        assert np.all(g.degrees() == 4)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_binary_tree(self):
        g = binary_tree_graph(3)
        assert g.num_vertices == 15
        assert g.num_edges == 14
        assert g.degree(0) == 2

    def test_erdos_renyi_deterministic(self):
        g1 = erdos_renyi_graph(30, 0.2, seed=5)
        g2 = erdos_renyi_graph(30, 0.2, seed=5)
        assert np.array_equal(g1.targets, g2.targets)

    def test_erdos_renyi_extremes(self):
        assert erdos_renyi_graph(10, 0.0).num_edges == 0
        assert erdos_renyi_graph(10, 1.0).num_edges == 45

    def test_generator_validation(self):
        with pytest.raises(GraphError):
            path_graph(0)
        with pytest.raises(GraphError):
            cycle_graph(2)
        with pytest.raises(GraphError):
            erdos_renyi_graph(5, 1.5)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=20),
    edges=st.lists(
        st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60
    ),
)
def test_property_builder_matches_reference(n, edges):
    """The CSR builder agrees with a set-based reference implementation."""
    edges = [(u % n, v % n) for u, v in edges]
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    g = from_edge_arrays(n, src, dst)

    ref = {(u, v) for u, v in edges if u != v}
    ref |= {(v, u) for u, v in ref}
    assert g.num_directed_edges == len(ref)
    for u in range(n):
        expected = sorted(v for (a, v) in ref if a == u)
        assert g.neighbors(u).tolist() == expected
