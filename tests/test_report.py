"""Tests for the EXPERIMENTS.md report generator."""

from pathlib import Path

import pytest

from repro.experiments import ExperimentSettings
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.report import generate_report, render_markdown


def fake_results():
    out = {}
    for eid in EXPERIMENTS:
        res = ExperimentResult(
            experiment_id=eid,
            title=f"Title of {eid}",
            headers=["a", "b"],
            rows=[[1, 2.5], ["x", 3]],
        )
        res.add_claim("some claim", "1.5x", "1.4x")
        res.notes.append("a note")
        out[eid] = res
    return out


class TestRenderMarkdown:
    def test_contains_all_sections(self):
        text = render_markdown(fake_results(), ExperimentSettings(), 1.0)
        for eid in EXPERIMENTS:
            assert f"## Title of {eid}" in text

    def test_tables_and_claims_rendered(self):
        text = render_markdown(fake_results(), ExperimentSettings(), 1.0)
        assert "| a | b |" in text
        assert "| some claim | 1.5x | 1.4x |" in text
        assert "*Note: a note*" in text

    def test_preamble_mentions_generation(self):
        text = render_markdown(fake_results(), ExperimentSettings(), 12.0)
        assert "generated" in text.lower()
        assert "scale offset 15" in text


class TestGenerateReport:
    @pytest.mark.slow
    def test_full_generation(self, tmp_path):
        """End-to-end generation at the fastest settings (runs every
        experiment once)."""
        out = generate_report(
            tmp_path / "EXPERIMENTS.md",
            ExperimentSettings(scale_offset=16, num_roots=2),
        )
        text = Path(out).read_text()
        assert "Fig. 9" in text
        assert "paper" in text
        assert text.count("##") >= len(EXPERIMENTS)


class TestRepositoryReportFresh:
    def test_checked_in_report_exists_and_covers_everything(self):
        """The repository ships a generated EXPERIMENTS.md covering every
        registered experiment."""
        path = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
        assert path.exists(), "run python -m repro.experiments.report"
        text = path.read_text()
        for eid, mod in EXPERIMENTS.items():
            assert mod.TITLE in text, f"{eid} missing from EXPERIMENTS.md"
