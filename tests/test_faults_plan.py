"""Determinism and validation of the fault plan/injector layer.

The whole point of :mod:`repro.faults` is that a seeded plan produces
the *identical* fault schedule on every run and every machine — these
tests pin the counter-based draws, the spec validation, the scenario
catalogue and the structured error contract.
"""

import json

import numpy as np
import pytest

from repro.errors import (
    CheckpointError,
    ConfigError,
    FaultError,
    ReproError,
    SimulationError,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkDegradation,
    PayloadCorruption,
    RankCrash,
    StragglerSlowdown,
    TransientCollectiveFault,
    TransientFaults,
    available_scenarios,
    words_checksum,
)


# ---- spec validation ------------------------------------------------------


def test_spec_validation_rejects_bad_values():
    with pytest.raises(ConfigError):
        RankCrash(rank=-1, level=0)
    with pytest.raises(ConfigError):
        RankCrash(rank=0, level=-2)
    with pytest.raises(ConfigError):
        StragglerSlowdown(rank=0, factor=0.5)
    with pytest.raises(ConfigError):
        LinkDegradation(node=0, factor=0.0)
    with pytest.raises(ConfigError):
        LinkDegradation(node=0, factor=1.5)
    with pytest.raises(ConfigError):
        TransientFaults(probability=1.0)
    with pytest.raises(ConfigError):
        TransientFaults(probability=-0.1)
    with pytest.raises(ConfigError):
        PayloadCorruption(level=0, bit_flips=0)


def test_spec_windows():
    s = StragglerSlowdown(rank=1, factor=2.0, first_level=2, last_level=4)
    assert not s.applies(1)
    assert s.applies(2) and s.applies(4)
    assert not s.applies(5)
    t = TransientFaults(probability=0.5, ops=("allgather",), first_level=1)
    assert t.applies("allgather", 1)
    assert not t.applies("alltoallv", 1)
    assert not t.applies("allgather", 0)


# ---- determinism ----------------------------------------------------------


def test_transient_draws_are_deterministic_and_seed_dependent():
    plan = FaultPlan(seed=7, transients=(TransientFaults(probability=0.4),))
    draws = [plan.transient_fires("allgather", 0, k) for k in range(64)]
    again = [plan.transient_fires("allgather", 0, k) for k in range(64)]
    assert draws == again
    assert any(draws) and not all(draws)
    other = FaultPlan(seed=8, transients=(TransientFaults(probability=0.4),))
    assert draws != [other.transient_fires("allgather", 0, k) for k in range(64)]


def test_corruption_bits_are_deterministic_and_in_range():
    plan = FaultPlan(seed=3)
    bits = [plan.corruption_bit(5, 1024, f) for f in range(8)]
    assert bits == [plan.corruption_bit(5, 1024, f) for f in range(8)]
    assert all(0 <= b < 1024 for b in bits)


def test_plan_factor_composition():
    plan = FaultPlan(
        seed=0,
        stragglers=(
            StragglerSlowdown(rank=2, factor=2.0),
            StragglerSlowdown(rank=2, factor=3.0),
        ),
        links=(LinkDegradation(node=1, factor=0.5),),
    )
    assert plan.straggler_factor(2, 0) == 6.0
    assert plan.straggler_factor(0, 0) == 1.0
    assert plan.link_derating(1) == 0.5
    assert plan.link_derating(0) == 1.0


# ---- scenario catalogue ---------------------------------------------------


def test_scenario_catalogue_builds_and_serializes():
    for name in available_scenarios():
        plan = FaultPlan.scenario(name, seed=5, num_ranks=16, nodes=2, depth=6)
        assert not plan.empty
        json.dumps(plan.as_dict())  # must be JSON-serializable


def test_unknown_scenario_is_typed():
    with pytest.raises(ConfigError):
        FaultPlan.scenario("meteor-strike")


def test_empty_plan():
    assert FaultPlan().empty
    assert not FaultPlan(crashes=(RankCrash(0, 0),)).empty


# ---- injector -------------------------------------------------------------


def test_injector_transient_raises_with_context():
    plan = FaultPlan(seed=1, transients=(TransientFaults(probability=0.9999),))
    inj = FaultInjector(plan)
    inj.begin_level(2)
    with pytest.raises(TransientCollectiveFault) as ei:
        inj.collective_attempt("allgather", wasted_ns=123.0)
    exc = ei.value
    assert exc.wasted_ns == 123.0
    d = exc.to_dict()
    assert d["type"] == "TransientCollectiveFault"
    assert d["context"]["collective"] == "allgather"
    assert d["context"]["level"] == 2
    assert inj.events and inj.events[0].kind == "transient"


def test_injector_schedule_replays_identically_after_reset():
    plan = FaultPlan(seed=9, transients=(TransientFaults(probability=0.5),))

    def schedule():
        inj = FaultInjector(plan)
        fired = []
        for k in range(32):
            try:
                inj.collective_attempt("alltoallv")
            except TransientCollectiveFault:
                fired.append(k)
        return fired

    assert schedule() == schedule()


def test_injector_corruption_flips_exact_bits_once():
    plan = FaultPlan(
        seed=4, corruptions=(PayloadCorruption(level=0, bit_flips=3),)
    )
    inj = FaultInjector(plan)
    words = np.zeros(8, dtype=np.uint64)
    out = inj.maybe_corrupt("allgather", words)
    assert out is not words  # copy, the input is never mutated
    assert np.count_nonzero(words) == 0
    flipped = int(sum(bin(int(w)).count("1") for w in out))
    assert 1 <= flipped <= 3  # collisions may land on the same bit
    # one-shot: the next payload passes through untouched
    again = inj.maybe_corrupt("allgather", words)
    assert again is words


def test_injector_crash_consumed_once():
    plan = FaultPlan(seed=0, crashes=(RankCrash(rank=3, level=2),))
    inj = FaultInjector(plan)
    assert inj.take_crash(1) is None
    crash = inj.take_crash(2)
    assert crash is not None and crash.rank == 3
    assert inj.take_crash(2) is None
    inj.reset()
    assert inj.take_crash(2) is not None


# ---- checksums ------------------------------------------------------------


def test_words_checksum_detects_any_single_flip():
    rng = np.random.default_rng(0)
    words = rng.integers(0, 2**63, size=64, dtype=np.int64).astype(np.uint64)
    base = words_checksum(words)
    for bit in (0, 17, 63 * 64 + 5):
        mutated = words.copy()
        mutated[bit // 64] ^= np.uint64(1) << np.uint64(bit % 64)
        assert words_checksum(mutated) != base


def test_words_checksum_parts_fold_to_concat():
    rng = np.random.default_rng(1)
    parts = [
        rng.integers(0, 2**63, size=n, dtype=np.int64).astype(np.uint64)
        for n in (3, 5, 0, 9)
    ]
    x, s = 0, 0
    for p in parts:
        px, ps = words_checksum(p)
        x ^= px
        s = (s + ps) % (1 << 64)
    assert (x, s) == words_checksum(np.concatenate(parts))
    assert words_checksum(np.zeros(0, dtype=np.uint64)) == (0, 0)


# ---- structured errors ----------------------------------------------------


def test_error_hierarchy_and_to_dict():
    assert issubclass(FaultError, SimulationError)
    assert issubclass(CheckpointError, ReproError)
    exc = FaultError("boom", rank=3, level=2, collective="allgather")
    d = exc.to_dict()
    assert d == {
        "type": "FaultError",
        "message": "boom",
        "context": {"rank": 3, "level": 2, "collective": "allgather"},
    }
    assert "rank=3" in str(exc)
    json.dumps(d)


def test_error_cause_recorded():
    try:
        try:
            raise ValueError("inner")
        except ValueError as inner:
            raise FaultError("outer", level=1) from inner
    except FaultError as exc:
        d = exc.to_dict()
        assert d["cause"] == {"type": "ValueError", "message": "inner"}
