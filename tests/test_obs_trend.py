"""Tests for the rolling-median trend checker (``repro.obs.trend``)."""

import pytest

from repro.obs.ledger import LedgerRecord
from repro.obs.trend import (
    TrendReport,
    check_records,
    check_series,
    robust_center,
)


def _run(teps, seconds=None, name="fig09", fingerprint="abc", **metrics):
    merged = {"teps": float(teps)}
    if seconds is not None:
        merged["simulated_seconds"] = float(seconds)
    merged.update(metrics)
    return LedgerRecord(
        kind="experiment",
        name=name,
        ts="2026-08-06T00:00:00+00:00",
        fingerprint=fingerprint,
        metrics=merged,
    )


class TestRobustCenter:
    def test_median_and_mad(self):
        center, sigma = robust_center([1.0, 2.0, 3.0, 4.0, 100.0])
        assert center == 3.0
        # MAD of deviations [2,1,0,1,97] is 1 -> sigma = 1.4826.
        assert sigma == pytest.approx(1.4826)

    def test_even_count_interpolates(self):
        center, sigma = robust_center([1.0, 3.0])
        assert center == 2.0
        assert sigma == pytest.approx(1.4826)

    def test_constant_history_has_zero_spread(self):
        center, sigma = robust_center([5.0] * 6)
        assert center == 5.0
        assert sigma == 0.0


class TestCheckSeries:
    def test_detects_teps_break_in_ten_run_history(self):
        """Acceptance: an injected >= 20 % TEPS drop against a stable
        10-run history is flagged as a break."""
        runs = [_run(1e6 * (1 + 0.01 * (i % 3))) for i in range(9)]
        runs.append(_run(0.75e6))  # 25 % below the rolling median
        points = {p.metric: p for p in check_series(runs)}
        assert points["teps"].status == "break"
        assert points["teps"].rel_change == pytest.approx(-0.25, abs=0.02)
        assert points["teps"].history == 8  # window default

    def test_stable_history_is_ok(self):
        runs = [_run(1e6 * (1 + 0.01 * (i % 3))) for i in range(10)]
        points = check_series(runs)
        assert all(p.status == "ok" for p in points)

    def test_insufficient_history_never_breaks(self):
        runs = [_run(1e6), _run(0.5e6)]
        (point,) = check_series(runs)
        assert point.status == "insufficient"
        assert point.history == 1

    def test_improvement_is_not_a_break(self):
        runs = [_run(1e6) for _ in range(6)]
        runs.append(_run(1.5e6))  # TEPS is higher-is-better
        (point,) = check_series(runs)
        assert point.status == "ok"
        assert point.rel_change == pytest.approx(0.5)

    def test_lower_is_better_metric_breaks_on_increase(self):
        runs = [_run(1e6, seconds=0.004) for _ in range(6)]
        runs.append(_run(1e6, seconds=0.006))  # sim time up 50 %
        points = {p.metric: p for p in check_series(runs)}
        assert points["simulated_seconds"].status == "break"
        assert points["teps"].status == "ok"

    def test_small_move_under_rel_floor_is_ok(self):
        runs = [_run(1e6) for _ in range(6)]
        runs.append(_run(0.95e6))  # only 5 % down, floor is 10 %
        (point,) = check_series(runs)
        assert point.status == "ok"

    def test_noisy_history_absorbs_move_within_sigma(self):
        # History wobbles +-20 %: sigma is large, so a 15 % drop clears
        # the relative floor but not the 4-sigma outlier bar.
        history = [100.0, 90.0, 110.0, 80.0, 120.0, 95.0, 105.0]
        runs = [_run(v) for v in history]
        runs.append(_run(85.0))
        (point,) = check_series(runs)
        assert point.status == "ok"
        assert abs(point.rel_change) >= 0.10

    def test_equal_direction_breaks_on_any_drift(self):
        # allgather_raw_bytes is a determinism invariant: a 0.1 % move
        # is already a break, in either direction.
        runs = [_run(1e6, allgather_raw_bytes=20800.0) for _ in range(6)]
        runs.append(_run(1e6, allgather_raw_bytes=20822.0))
        points = {p.metric: p for p in check_series(runs)}
        assert points["allgather_raw_bytes"].status == "break"

    def test_equal_direction_exact_match_is_ok(self):
        runs = [_run(1e6, allgather_raw_bytes=20800.0) for _ in range(6)]
        points = {p.metric: p for p in check_series(runs)}
        assert points["allgather_raw_bytes"].status == "ok"

    def test_levels_metric_is_skipped(self):
        runs = [_run(1e6, levels=7.0) for _ in range(6)]
        assert "levels" not in {p.metric for p in check_series(runs)}

    def test_window_limits_history(self):
        # Ancient slow runs fall outside the window: only the recent
        # fast history is compared against.
        runs = [_run(0.1e6) for _ in range(5)]
        runs += [_run(1e6) for _ in range(8)]
        runs.append(_run(1e6))
        (point,) = check_series(runs, window=8)
        assert point.status == "ok"
        assert point.center == pytest.approx(1e6)

    def test_empty_series(self):
        assert check_series([]) == []


class TestCheckRecords:
    def test_series_are_judged_independently(self):
        records = []
        # Config "aaa": stable. Config "bbb": broken in its latest run.
        for _ in range(6):
            records.append(_run(1e6, fingerprint="aaa"))
            records.append(_run(2e6, fingerprint="bbb"))
        records.append(_run(1e6, fingerprint="aaa"))
        records.append(_run(1.2e6, fingerprint="bbb"))  # 40 % down
        report = check_records(records)
        assert not report.ok
        broken = {p.series for p in report.breaks}
        assert broken == {("experiment", "fig09", "bbb")}

    def test_report_as_dict_schema(self):
        report = check_records([_run(1e6) for _ in range(5)])
        doc = report.as_dict()
        assert doc["schema"] == "repro.trend/v1"
        assert doc["ok"] is True
        assert doc["window"] == 8
        assert all(p["status"] == "ok" for p in doc["points"])

    def test_to_text_counts_breaks(self):
        runs = [_run(1e6) for _ in range(6)] + [_run(0.5e6)]
        report = check_records(runs)
        text = report.to_text()
        assert "1 break(s)" in text
        assert "teps" in text
        ok_report = TrendReport(points=[])
        assert "nothing to show" in ok_report.to_text()

    def test_mixed_kinds_do_not_cross_contaminate(self):
        records = [_run(1e6) for _ in range(6)]
        chaos = LedgerRecord(
            kind="chaos", name="campaign", fingerprint="abc",
            metrics={"recovery_overhead_pct_max": 12.0},
        )
        report = check_records(records + [chaos])
        series = {p.series for p in report.points}
        assert ("experiment", "fig09", "abc") in series
        assert all(p.status != "break" for p in report.points)
