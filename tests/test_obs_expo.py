"""OpenMetrics exposition: deterministic rendering, strict parsing."""

import math

import pytest

from repro.obs.expo import (
    CONTENT_TYPE,
    ExpositionError,
    parse_openmetrics,
    render_openmetrics,
    sanitize_name,
)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.counter("serve.requests_total").inc(24)
    reg.counter("serve.errors_total", kind="timeout").inc(2)
    reg.gauge("serve.queue_depth").set(3)
    hist = reg.histogram("serve.latency_ms")
    for v in (0.5, 1.0, 2.0, 8.0, 64.0):
        hist.observe(v)
    return reg


class TestRender:
    def test_document_shape(self, registry):
        text = render_openmetrics(registry)
        assert text.endswith("# EOF\n")
        assert "# TYPE serve_requests counter" in text
        assert "# TYPE serve_queue_depth gauge" in text
        assert "# TYPE serve_latency_ms histogram" in text
        # Counter samples carry the _total suffix, folded from the
        # registry name into the family name.
        assert "serve_requests_total 24" in text

    def test_deterministic(self, registry):
        assert render_openmetrics(registry) == render_openmetrics(registry)

    def test_content_type_constant(self):
        assert "openmetrics-text" in CONTENT_TYPE

    def test_sanitize_name(self):
        assert sanitize_name("serve.latency_ms") == "serve_latency_ms"
        assert sanitize_name("9lives") == "_9lives"

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("odd_total", path='a"b\\c\nd').inc()
        text = render_openmetrics(reg)
        doc = parse_openmetrics(text)
        ((_suffix, labels, value),) = doc["odd"]["samples"]
        assert labels == {"path": 'a"b\\c\nd'}
        assert value == 1.0

    def test_empty_registry_is_just_eof(self):
        text = render_openmetrics(MetricsRegistry())
        assert text == "# EOF\n"
        assert parse_openmetrics(text) == {}


class TestRoundTrip:
    def test_counters_and_gauges(self, registry):
        doc = parse_openmetrics(render_openmetrics(registry))
        assert doc["serve_requests"]["type"] == "counter"
        ((suffix, labels, value),) = doc["serve_requests"]["samples"]
        assert (suffix, labels, value) == ("_total", {}, 24.0)
        ((suffix, labels, value),) = doc["serve_errors"]["samples"]
        assert labels == {"kind": "timeout"} and value == 2.0
        ((suffix, labels, value),) = doc["serve_queue_depth"]["samples"]
        assert suffix == "" and value == 3.0

    def test_histogram_buckets_cumulative(self, registry):
        doc = parse_openmetrics(render_openmetrics(registry))
        samples = doc["serve_latency_ms"]["samples"]
        buckets = [
            (float(labels["le"]), value)
            for suffix, labels, value in samples
            if suffix == "_bucket"
        ]
        bounds = [b for b, _ in buckets]
        counts = [c for _, c in buckets]
        assert bounds == sorted(bounds)
        assert counts == sorted(counts)
        assert bounds[-1] == math.inf and counts[-1] == 5.0
        count = [v for s, _l, v in samples if s == "_count"][0]
        total = [v for s, _l, v in samples if s == "_sum"][0]
        assert count == 5.0
        assert total == pytest.approx(75.5)

    def test_parser_accepts_inf_bound_only_once(self, registry):
        text = render_openmetrics(registry)
        assert text.count('le="+Inf"') == 1


class TestParserRejects:
    def test_missing_eof(self):
        with pytest.raises(ExpositionError, match="EOF"):
            parse_openmetrics("# TYPE x gauge\nx 1\n")

    def test_content_after_eof(self):
        with pytest.raises(ExpositionError, match="after # EOF"):
            parse_openmetrics("# EOF\nx 1\n")

    def test_sample_before_type(self):
        with pytest.raises(ExpositionError):
            parse_openmetrics("x_total 1\n# EOF\n")

    def test_counter_without_total_suffix(self):
        with pytest.raises(ExpositionError):
            parse_openmetrics("# TYPE x counter\nx 1\n# EOF\n")

    def test_histogram_suffix_rules(self):
        with pytest.raises(ExpositionError):
            parse_openmetrics("# TYPE h histogram\nh 1\n# EOF\n")

    def test_non_monotone_buckets(self):
        doc = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_count 5\n"
            "h_sum 9\n"
            "# EOF\n"
        )
        with pytest.raises(ExpositionError):
            parse_openmetrics(doc)

    def test_count_must_match_inf_bucket(self):
        doc = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5\n'
            "h_count 4\n"
            "h_sum 9\n"
            "# EOF\n"
        )
        with pytest.raises(ExpositionError):
            parse_openmetrics(doc)

    def test_missing_inf_bucket(self):
        doc = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            "h_count 5\n"
            "h_sum 9\n"
            "# EOF\n"
        )
        with pytest.raises(ExpositionError):
            parse_openmetrics(doc)

    def test_bad_labelset(self):
        with pytest.raises(ExpositionError):
            parse_openmetrics('# TYPE g gauge\ng{oops} 1\n# EOF\n')

    def test_unparseable_sample(self):
        with pytest.raises(ExpositionError, match="unparseable|bad value"):
            parse_openmetrics("# TYPE g gauge\ng one\n# EOF\n")
