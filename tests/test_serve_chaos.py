"""Serve-chaos: fault plans, the injector, the campaign, and its CLI."""

import json

import pytest

from repro.errors import ConfigError, FaultError
from repro.faults.chaoscli import main as chaos_main
from repro.faults.plan import SERVE_FAULT_KINDS, FaultPlan, ServeFault
from repro.faults.servechaos import (
    available_serve_scenarios,
    record_from_serve_chaos,
    run_serve_campaign,
    serve_plan,
)
from repro.faults.serveinject import ServeFaultInjector


class TestServeFaultSpec:
    def test_kinds_catalogue(self):
        assert set(SERVE_FAULT_KINDS) == {
            "session-error", "straggler", "dispatcher-kill", "cache-poison"
        }

    def test_fires_at_window(self):
        fault = ServeFault(kind="session-error", at_batch=2, count=3)
        assert [fault.fires_at(i) for i in range(6)] == [
            False, False, True, True, True, False
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "nonsense"},
            {"kind": "session-error", "at_batch": -1},
            {"kind": "session-error", "count": 0},
            {"kind": "session-error", "delay_s": -1.0},
            {"kind": "straggler"},  # needs delay_s > 0
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            ServeFault(**kwargs)

    def test_plan_carries_serve_faults(self):
        plan = FaultPlan(serve=(ServeFault(kind="cache-poison"),))
        assert not plan.empty
        doc = plan.as_dict()
        assert doc["serve"][0]["kind"] == "cache-poison"


class _Result:
    def __init__(self, root):
        self.root = root


class TestServeFaultInjector:
    def _injector(self, *faults, armed=True):
        return ServeFaultInjector(
            FaultPlan(serve=tuple(faults)), sleep=lambda s: None, armed=armed
        )

    def test_noop_until_armed(self):
        injector = self._injector(
            ServeFault(kind="session-error"), armed=False
        )
        injector.session_tick(1)  # would raise if live
        assert injector.events == []
        injector.arm()
        with pytest.raises(FaultError):
            injector.session_tick(1)
        assert injector.events[0].kind == "serve-session-error"

    def test_arm_resets_counters(self):
        injector = self._injector(
            ServeFault(kind="dispatcher-kill", at_batch=0), armed=True
        )
        with pytest.raises(FaultError):
            injector.dispatcher_tick()
        injector.dispatcher_tick()  # batch 1: no fault
        injector.arm()  # counters rewind: batch 0 again
        with pytest.raises(FaultError):
            injector.dispatcher_tick()

    def test_straggler_sleeps_deterministically(self):
        slept = []
        injector = ServeFaultInjector(
            FaultPlan(
                serve=(
                    ServeFault(kind="straggler", at_batch=1, delay_s=0.5),
                )
            ),
            sleep=slept.append,
            armed=True,
        )
        for _ in range(3):
            injector.session_tick(4)
        assert slept == [0.5]
        assert injector.events[0].detail["delay_s"] == 0.5

    def test_poison_replaces_root_on_cached_copy_only(self):
        import dataclasses

        @dataclasses.dataclass
        class R:
            root: int

        injector = self._injector(ServeFault(kind="cache-poison"))
        original = R(root=7)
        poisoned = injector.maybe_poison(original)
        assert poisoned.root == 8
        assert original.root == 7  # the waiters' copy is untouched
        # Subsequent batches pass through unpoisoned (count=1).
        assert injector.maybe_poison(R(root=3)).root == 3

    def test_poison_leaves_rootless_results_alone(self):
        injector = self._injector(ServeFault(kind="cache-poison"))
        obj = object()
        assert injector.maybe_poison(obj) is obj

    def test_events_as_dicts(self):
        injector = self._injector(ServeFault(kind="dispatcher-kill"))
        with pytest.raises(FaultError):
            injector.dispatcher_tick()
        (event,) = injector.events_as_dicts()
        assert event["kind"] == "serve-dispatcher-kill"
        assert event["detail"]["scope"] == "serve"

    def test_wrapped_session_fresh_is_clean(self):
        class Inner:
            digest = "d"
            config = "c"

            def fresh(self):
                return Inner()

            def run_batch(self, sources, validate=False, trace_ids=None,
                          batch_id=None, cancel=None):
                return [_Result(int(s)) for s in sources]

        injector = self._injector(ServeFault(kind="session-error"))
        wrapped = injector.wrap_session(Inner())
        fresh = wrapped.fresh()
        assert isinstance(fresh, Inner)  # unwrapped: retries dodge faults
        with pytest.raises(FaultError):
            wrapped.run_batch([1, 2])


class TestServePlans:
    def test_catalogue(self):
        names = available_serve_scenarios()
        assert "mixed" in names and "dispatcher-kill" in names

    def test_unknown_scenario(self):
        with pytest.raises(ConfigError):
            serve_plan("definitely-not-a-scenario")

    def test_seed_determinism(self):
        assert serve_plan("mixed", seed=3) == serve_plan("mixed", seed=3)

    def test_every_plan_has_serve_faults(self):
        for name in available_serve_scenarios():
            plan = serve_plan(name, seed=1)
            assert plan.serve, name


@pytest.fixture(scope="module")
def mixed_report():
    """One small campaign shared by the recovery/record/CLI tests."""
    return run_serve_campaign(["mixed"], scale=10, nodes=2, seed=0)


class TestServeCampaign:
    def test_mixed_scenario_recovers(self, mixed_report):
        assert mixed_report["schema"] == "repro.chaos/v1"
        assert mixed_report["mode"] == "serve"
        assert mixed_report["ok"] is True
        (entry,) = mixed_report["scenarios"]
        assert entry["outcome"] == "recovered"
        checks = entry["checks"]
        assert checks["all_queries_terminal"]
        assert checks["slo_burn_detected"]
        assert checks["slo_recovered"]
        assert checks["dispatcher_restarted"]
        assert checks["answers_correct"]
        assert entry["slo_after"]["verdict"] == "ok"
        assert entry["events"], "injected faults must be recorded"

    def test_ledger_record(self, mixed_report):
        record = record_from_serve_chaos(mixed_report, source="test")
        assert record.kind == "chaos"
        assert record.name == "serve-chaos"
        assert record.labels["outcomes"] == "mixed=recovered"
        assert record.metrics["recovered"] == 1.0
        assert record.extra["checks"]["mixed"]["slo_recovered"]

    def test_record_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            record_from_serve_chaos({"schema": "nope"})

    def test_unknown_scenario_errors(self):
        with pytest.raises(ConfigError):
            run_serve_campaign(["no-such-thing"], scale=10)


class TestServeChaosCLI:
    def test_list(self, capsys):
        assert chaos_main(["serve", "list"]) == 0
        out = capsys.readouterr().out
        assert "mixed" in out

    def test_unknown_scenario_exits_2(self, capsys):
        assert chaos_main(["serve", "bogus-scenario"]) == 2

    def test_session_error_scenario_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        slo = tmp_path / "slo.json"
        code = chaos_main(
            [
                "serve", "session-error",
                "--scale", "10",
                "--json", str(out),
                "--slo-out", str(slo),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        (entry,) = report["scenarios"]
        assert entry["outcome"] == "recovered"
        assert entry["checks"]["retry_fired"]
        slo_doc = json.loads(slo.read_text())
        assert slo_doc["session-error"]["verdict"] == "ok"
        table = capsys.readouterr().out
        assert "recovered" in table
