"""Extension bench: 1-D hybrid vs 2-D partitioned BFS (Buluc-Madduri).

The paper's related work positions the 2-D algorithm as orthogonal to
its NUMA/sharing optimizations.  This bench quantifies the comparison on
the same simulated 16-rank cluster:

* communication *volume*: the 2-D grid confines exchanges to grid fibers
  (~sqrt(p) peers), beating 1-D pure top-down;
* end-to-end time: the 1-D *hybrid* still wins, because the bottom-up
  phase skips most edge work — direction optimization and 2-D
  partitioning attack different costs, which is exactly why the paper
  calls them composable.
"""

from __future__ import annotations

import numpy as np

from repro.core import BFSConfig, BFSEngine, TraversalMode
from repro.core.twod import Grid2D, TwoDBFSEngine
from repro.graph import rmat_graph
from repro.graph.degree import sample_roots
from repro.machine import paper_cluster
from repro.model import extrapolate_result
from repro.util.formatting import format_bytes, format_table, format_time_ns

TARGET_SCALE = 29  # comparisons priced at a paper-like scale


def test_1d_vs_2d(benchmark):
    graph = rmat_graph(scale=14, seed=2)
    cluster = paper_cluster(nodes=2)
    root = int(sample_roots(graph, 1, seed=4)[0])

    def measure():
        eng_2d = TwoDBFSEngine(graph, cluster, Grid2D(4, 4))
        res_2d = eng_2d.extrapolate(eng_2d.run(root), TARGET_SCALE)
        eng_td = BFSEngine(
            graph, cluster, BFSConfig(mode=TraversalMode.TOP_DOWN)
        )
        res_td = extrapolate_result(eng_td.run(root), eng_td, TARGET_SCALE)
        eng_hy = BFSEngine(graph, cluster, BFSConfig.original_ppn8())
        res_hybrid = extrapolate_result(eng_hy.run(root), eng_hy, TARGET_SCALE)
        return res_2d, res_td, res_hybrid

    res_2d, res_td, res_hybrid = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    td_bytes = sum(
        float(lc.td_send_bytes.sum())
        for lc in res_td.counts.levels
        if lc.td_send_bytes is not None
    )
    hybrid_bytes = sum(
        float(lc.td_send_bytes.sum())
        for lc in res_hybrid.counts.levels
        if lc.td_send_bytes is not None
    ) + sum(
        lc.inq_part_words * 8.0 * res_hybrid.counts.num_ranks
        for lc in res_hybrid.counts.levels
    )
    rows = [
        ["1-D pure top-down (16 ranks)", format_bytes(td_bytes),
         format_time_ns(res_td.seconds * 1e9)],
        ["2-D top-down, 4x4 grid", format_bytes(res_2d.total_comm_bytes),
         format_time_ns(res_2d.seconds * 1e9)],
        ["1-D hybrid (the paper)", format_bytes(hybrid_bytes),
         format_time_ns(res_hybrid.seconds * 1e9)],
    ]
    print()
    print(format_table(
        ["engine", "comm volume", "simulated time"],
        rows,
        title="extension: 2-D partitioning vs the paper's 1-D hybrid",
    ))
    # The SC'11 volume claim for top-down...
    assert res_2d.total_comm_bytes < td_bytes * 1.2
    # ...and the hybrid's end-to-end advantage (direction optimization).
    assert res_hybrid.seconds < res_2d.seconds
