"""Benchmark harness regenerating Fig 10 of the paper.

Prints the reproduced rows/series and the paper-vs-measured claims;
see repro/experiments/fig10*.py for the experiment definition.
"""

from conftest import run_and_report


def test_fig10(benchmark, settings):
    run_and_report(benchmark, "fig10", settings)
