"""Benchmark harness regenerating Fig 13 of the paper.

Prints the reproduced rows/series and the paper-vs-measured claims;
see repro/experiments/fig13*.py for the experiment definition.
"""

from conftest import run_and_report


def test_fig13(benchmark, settings):
    run_and_report(benchmark, "fig13", settings)
