"""Comm-bytes baseline: frontier codecs at the paper configuration.

One full BFS per registered codec on the acceptance workload — 16 nodes,
ppn=8 (128 ranks), scale-15 R-MAT, ``Share all`` + parallel allgather —
recording the total simulated allgather payload (raw vs. on-wire) to the
benchmark JSON's ``extra_info``.  ``make bench-baseline`` persists the
table as ``BENCH_comm.json``; compare runs with ``pytest-benchmark
compare``.

The traversal is the paper's all-bottom-up algorithm (every level runs
the two allgathers, which is why they dominate Fig. 12); the repo's
hybrid extension already skips the sparse levels where compression pays,
so it is not the right vehicle for a codec baseline.  The ``auto`` row
doubles as the acceptance gate: its wire bytes must undercut ``raw`` by
at least 30 %.

Environment knobs: ``REPRO_BENCH_SCALE`` (default 15) sizes the R-MAT
graph; ``REPRO_BENCH_NODES`` (default 16) the cluster.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import BFSConfig, BFSEngine, CommConfig, TraversalMode
from repro.graph import rmat_graph
from repro.machine import paper_cluster
from repro.mpi.codecs import available_codecs

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "15"))
NODES = int(os.environ.get("REPRO_BENCH_NODES", "16"))
PPN = 8
CODECS = available_codecs()

#: The acceptance criterion: auto's wire bytes vs raw's, at the paper
#: configuration (only asserted at the full scale-15 workload).
MAX_AUTO_WIRE_FRACTION = 0.7


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=SCALE, seed=3)


def allgather_bytes(result):
    """Total bottom-up allgather payload of one run (in_queue + summary)."""
    raw = wire = 0.0
    for lc in result.counts.levels:
        if lc.direction != "bottom_up":
            continue
        raw += lc.inq_raw_total_bytes + lc.summary_raw_total_bytes
        wire += lc.inq_wire_total_bytes + lc.summary_wire_total_bytes
    return raw, wire


@pytest.mark.parametrize("codec", CODECS)
def test_comm_bytes(benchmark, graph, codec):
    """One paper-config BFS per codec; extra_info carries the byte table."""
    cluster = paper_cluster(nodes=NODES)
    cfg = BFSConfig(
        ppn=PPN,
        mode=TraversalMode.BOTTOM_UP,
        comm=CommConfig.parallel(codec=codec),
        label=f"codec={codec}",
    )
    engine = BFSEngine(graph, cluster, cfg)
    root = int(np.argmax(graph.degrees()))
    result = benchmark.pedantic(engine.run, args=(root,), rounds=1, iterations=1)
    raw, wire = allgather_bytes(result)
    assert raw > 0
    bu_levels = [
        lc for lc in result.counts.levels if lc.direction == "bottom_up"
    ]
    benchmark.extra_info.update(
        codec=codec,
        scale=SCALE,
        nodes=NODES,
        ppn=PPN,
        allgather_raw_bytes=raw,
        allgather_wire_bytes=wire,
        reduction_pct=round(100.0 * (1.0 - wire / raw), 1),
        simulated_seconds=result.seconds,
        per_level_codecs=[lc.codec or "raw" for lc in bu_levels],
    )
    if codec == "auto" and SCALE >= 15:
        assert wire <= MAX_AUTO_WIRE_FRACTION * raw, (
            f"auto wire bytes {wire:.0f} exceed "
            f"{MAX_AUTO_WIRE_FRACTION:.0%} of raw {raw:.0f}"
        )
    if codec == "raw":
        assert wire == raw
