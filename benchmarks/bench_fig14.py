"""Benchmark harness regenerating Fig 14 of the paper.

Prints the reproduced rows/series and the paper-vs-measured claims;
see repro/experiments/fig14*.py for the experiment definition.
"""

from conftest import run_and_report


def test_fig14(benchmark, settings):
    run_and_report(benchmark, "fig14", settings)
