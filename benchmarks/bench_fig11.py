"""Benchmark harness regenerating Fig 11 of the paper.

Prints the reproduced rows/series and the paper-vs-measured claims;
see repro/experiments/fig11*.py for the experiment definition.
"""

from conftest import run_and_report


def test_fig11(benchmark, settings):
    run_and_report(benchmark, "fig11", settings)
