"""Benchmark harness regenerating Table I of the paper.

Prints the reproduced rows/series and the paper-vs-measured claims;
see repro/experiments/table1*.py for the experiment definition.
"""

from conftest import run_and_report


def test_table1(benchmark, settings):
    run_and_report(benchmark, "table1", settings)
