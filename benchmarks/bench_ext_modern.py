"""Extension bench: the optimization stack on 2012 vs modern hardware.

Prints the gain-structure comparison; see repro/experiments/ext_modern.py.
"""

from conftest import run_and_report


def test_ext_modern(benchmark, settings):
    run_and_report(benchmark, "ext_modern", settings)
