"""Benchmark harness regenerating Fig 6 of the paper.

Prints the reproduced rows/series and the paper-vs-measured claims;
see repro/experiments/fig06*.py for the experiment definition.
"""

from conftest import run_and_report


def test_fig06(benchmark, settings):
    run_and_report(benchmark, "fig06", settings)
