"""Benchmark harness regenerating Fig 16 of the paper.

Prints the reproduced rows/series and the paper-vs-measured claims;
see repro/experiments/fig16*.py for the experiment definition.
"""

from conftest import run_and_report


def test_fig16(benchmark, settings):
    run_and_report(benchmark, "fig16", settings)
