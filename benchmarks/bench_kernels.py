"""Microbenchmarks of the library's hot kernels.

These are *wall-clock* benchmarks of the reproduction's own code (unlike
the figure benches, which report simulated time): bitmap operations, the
bottom-up scan under every registered kernel backend, the R-MAT
generator and a full engine run.  They guard against performance
regressions in the simulator itself.

The bottom-up benchmarks run each backend on a *real* mid-BFS level
(the scan right after level 1 from a high-degree root), which is where
the active-set backend's early exit pays: most candidates retire within
their first couple of edges.  ``make bench-baseline`` records the suite
to ``BENCH_kernels.json`` with backend/scale/commit metadata.

Environment knobs: ``REPRO_BENCH_SCALE`` (default 16) sizes the R-MAT
graph so CI can run a small smoke pass.  The default moved from 15 to
16 when the ``cnative`` backend landed: at 15 its per-round scan is
well under a millisecond, too close to timer noise to gate on.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import BFSConfig, BFSEngine, Bitmap, SummaryBitmap, compute_levels
from repro.core.kernels import available_backends, get_backend
from repro.core.state import RankState
from repro.graph import Partition1D, generate_rmat_edges, rmat_graph
from repro.graph.builder import build_graph
from repro.machine import paper_cluster
from repro.util import segments

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "16"))
BACKENDS = available_backends()


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=SCALE, seed=3)


@pytest.fixture(scope="module")
def mid_level(graph):
    """Frontier/visited sets of a real mid-BFS level: the bottom-up scan
    right after level 1, started from the highest-degree vertex (the
    densest level of the traversal, where early exit matters most)."""
    root = int(np.argmax(graph.degrees()))
    result = BFSEngine(graph, paper_cluster(nodes=1), BFSConfig()).run(root)
    levels = compute_levels(graph, root, result.parent)
    frontier = np.flatnonzero(levels == 1)
    visited = np.flatnonzero((levels >= 0) & (levels <= 1))
    return frontier, visited


def test_bitmap_set_and_count(benchmark):
    rng = np.random.default_rng(0)
    idx = rng.integers(0, 1 << 22, size=200_000)

    def op():
        bm = Bitmap(1 << 22)
        bm.set(idx)
        return bm.count()

    assert benchmark(op) > 0


def test_summary_build(benchmark):
    rng = np.random.default_rng(1)
    bm = Bitmap.from_indices(
        1 << 22, rng.integers(0, 1 << 22, size=100_000)
    )
    summary = benchmark(SummaryBitmap.build, bm, 256)
    assert 0.0 <= summary.zero_fraction() <= 1.0


def test_segment_first_true(benchmark):
    rng = np.random.default_rng(2)
    lengths = rng.integers(0, 40, size=100_000)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    mask = rng.random(int(offsets[-1])) < 0.05
    out = benchmark(segments.segment_first_true, mask, offsets)
    assert out.size == 100_000


def test_segment_first_true_and_counts_fused(benchmark):
    # The fused single-pass variant used by the kernels: first hit and
    # early-exit examined count together.
    rng = np.random.default_rng(2)
    lengths = rng.integers(0, 40, size=100_000)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    mask = rng.random(int(offsets[-1])) < 0.05
    first, counts = benchmark(
        segments.segment_first_true_and_counts, mask, offsets
    )
    assert first.size == counts.size == 100_000


def test_rmat_generation(benchmark):
    edges = benchmark(generate_rmat_edges, 14, 16, seed=9)
    assert edges.num_edges == 16 * (1 << 14)


def test_csr_build(benchmark):
    edges = generate_rmat_edges(14, 16, seed=9)
    graph = benchmark(build_graph, edges)
    assert graph.num_vertices == 1 << 14


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_bottom_up_scan(benchmark, graph, mid_level, backend_name):
    """One mid-BFS bottom-up scan per backend (the acceptance metrics:
    activeset must beat reference by >= 2x, cnative must beat activeset
    by >= 10x at the default scale)."""
    frontier, visited = mid_level
    backend = get_backend(backend_name)
    if backend.name != backend_name:
        # Resolution degraded (e.g. cnative without a toolchain): skip
        # rather than record another backend's numbers under this label.
        pytest.skip(f"backend {backend_name!r} unavailable here")
    part = Partition1D(graph.num_vertices, 1)
    in_queue = Bitmap.from_indices(graph.num_vertices, frontier)
    summary = SummaryBitmap.build(in_queue, 64)

    def fresh_state():
        state = RankState(part.extract_local(graph, 0))
        state.discover(visited, visited)
        return (state, in_queue, summary), {}

    result = benchmark.pedantic(
        backend.bottom_up_scan,
        setup=fresh_state,
        rounds=30,
        warmup_rounds=3,
    )
    assert result.examined_edges > 0
    benchmark.extra_info.update(
        backend=backend_name,
        scale=SCALE,
        frontier=int(frontier.size),
        candidates=result.candidates,
        examined_edges=result.examined_edges,
        inqueue_reads=result.inqueue_reads,
        gathered_edges=result.gathered_edges,
        chunk_rounds=result.chunk_rounds,
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_full_engine_run(benchmark, graph, backend_name):
    cluster = paper_cluster(nodes=2)
    engine = BFSEngine(
        graph, cluster, BFSConfig(kernel=backend_name, label="Original.ppn=8")
    )
    if engine.kernel.name != backend_name:
        pytest.skip(f"backend {backend_name!r} unavailable here")
    root = int(np.argmax(graph.degrees()))
    result = benchmark.pedantic(engine.run, args=(root,), rounds=1, iterations=1)
    assert result.visited > 0
    benchmark.extra_info.update(backend=backend_name, scale=SCALE)
