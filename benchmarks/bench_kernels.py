"""Microbenchmarks of the library's hot kernels.

These are *wall-clock* benchmarks of the reproduction's own code (unlike
the figure benches, which report simulated time): bitmap operations, the
vectorized bottom-up scan, the R-MAT generator and a full engine run.
They guard against performance regressions in the simulator itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BFSConfig, BFSEngine, Bitmap, SummaryBitmap
from repro.core import bottomup
from repro.core.state import RankState
from repro.graph import Partition1D, generate_rmat_edges, rmat_graph
from repro.graph.builder import build_graph
from repro.machine import paper_cluster
from repro.util import segments


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=15, seed=3)


def test_bitmap_set_and_count(benchmark):
    rng = np.random.default_rng(0)
    idx = rng.integers(0, 1 << 22, size=200_000)

    def op():
        bm = Bitmap(1 << 22)
        bm.set(idx)
        return bm.count()

    assert benchmark(op) > 0


def test_summary_build(benchmark):
    rng = np.random.default_rng(1)
    bm = Bitmap.from_indices(
        1 << 22, rng.integers(0, 1 << 22, size=100_000)
    )
    summary = benchmark(SummaryBitmap.build, bm, 256)
    assert 0.0 <= summary.zero_fraction() <= 1.0


def test_segment_first_true(benchmark):
    rng = np.random.default_rng(2)
    n = 2_000_000
    lengths = rng.integers(0, 40, size=100_000)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    mask = rng.random(int(offsets[-1])) < 0.05
    out = benchmark(segments.segment_first_true, mask, offsets)
    assert out.size == 100_000


def test_rmat_generation(benchmark):
    edges = benchmark(generate_rmat_edges, 14, 16, seed=9)
    assert edges.num_edges == 16 * (1 << 14)


def test_csr_build(benchmark):
    edges = generate_rmat_edges(14, 16, seed=9)
    graph = benchmark(build_graph, edges)
    assert graph.num_vertices == 1 << 14


def test_bottom_up_scan(benchmark, graph):
    part = Partition1D(graph.num_vertices, 1)
    rng = np.random.default_rng(3)
    frontier = rng.choice(graph.num_vertices, size=2000, replace=False)
    in_queue = Bitmap.from_indices(graph.num_vertices, frontier)
    summary = SummaryBitmap.build(in_queue, 64)

    def op():
        state = RankState(part.extract_local(graph, 0))
        return bottomup.scan(state, in_queue, summary)

    result = benchmark(op)
    assert result.examined_edges > 0


def test_full_engine_run(benchmark, graph):
    cluster = paper_cluster(nodes=2)
    engine = BFSEngine(graph, cluster, BFSConfig.original_ppn8())
    root = int(np.argmax(graph.degrees()))
    result = benchmark.pedantic(engine.run, args=(root,), rounds=1, iterations=1)
    assert result.visited > 0
