"""Benchmark harness regenerating Fig 12 of the paper.

Prints the reproduced rows/series and the paper-vs-measured claims;
see repro/experiments/fig12*.py for the experiment definition.
"""

from conftest import run_and_report


def test_fig12(benchmark, settings):
    run_and_report(benchmark, "fig12", settings)
