"""Shared fixtures for the benchmark harness.

Every ``bench_figXX.py`` regenerates one table/figure of the paper: it
runs the experiment under pytest-benchmark (one round — these are
simulations, not microkernels) and prints the same rows/series the paper
reports, plus the paper-vs-measured claim lines that feed EXPERIMENTS.md.

Each benchmark also attaches a ``telemetry`` block to its
pytest-benchmark ``extra_info`` (and therefore to ``--benchmark-json``
output): the experiment's wall-clock seconds and a snapshot of the
process-wide metrics registry, so ``BENCH_*.json`` files carry the
measurement substrate described in docs/OBSERVABILITY.md.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSettings, run_experiment
from repro.obs.ledger import environment_provenance
from repro.obs.metrics import default_registry


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Benchmark-speed settings: 2 roots, functional runs 16 scales below
    the paper's (override via REPRO_BENCH_OFFSET / REPRO_BENCH_ROOTS)."""
    import os

    return ExperimentSettings(
        scale_offset=int(os.environ.get("REPRO_BENCH_OFFSET", "16")),
        num_roots=int(os.environ.get("REPRO_BENCH_ROOTS", "2")),
    )


def run_and_report(benchmark, experiment_id: str, settings) -> None:
    """Benchmark one experiment and print its reproduced figure."""
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id, settings),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())
    # Identity key for the baseline differ (repro-perf diff): runs of
    # different experiments are never compared against each other.
    benchmark.extra_info["experiment"] = experiment_id
    # Where the measurement ran: compared as a warning (never a gate) by
    # the differ, and carried into ledger records built from this JSON.
    benchmark.extra_info["provenance"] = environment_provenance()
    for name, (paper, measured) in result.claims.items():
        benchmark.extra_info[name] = f"paper {paper} | measured {measured}"
    registry = default_registry()
    wall = registry.as_dict()["histograms"].get(
        f"experiment.wall_seconds{{experiment={experiment_id}}}"
    )
    benchmark.extra_info["telemetry"] = {
        "experiment": experiment_id,
        "wall_seconds": wall["sum"] if wall else None,
        "metrics": registry.as_dict(),
    }


@pytest.fixture
def report(benchmark, settings):
    """Callable fixture: ``report('fig09')``."""

    def _run(experiment_id: str) -> None:
        run_and_report(benchmark, experiment_id, settings)

    return _run
