"""Benchmark harness regenerating Fig 4 of the paper.

Prints the reproduced rows/series and the paper-vs-measured claims;
see repro/experiments/fig04*.py for the experiment definition.
"""

from conftest import run_and_report


def test_fig04(benchmark, settings):
    run_and_report(benchmark, "fig04", settings)
