"""Benchmark harness regenerating Fig 3 of the paper.

Prints the reproduced rows/series and the paper-vs-measured claims;
see repro/experiments/fig03*.py for the experiment definition.
"""

from conftest import run_and_report


def test_fig03(benchmark, settings):
    run_and_report(benchmark, "fig03", settings)
