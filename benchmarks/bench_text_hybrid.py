"""Benchmark harness regenerating Text IIA of the paper.

Prints the reproduced rows/series and the paper-vs-measured claims;
see repro/experiments/text_hybrid*.py for the experiment definition.
"""

from conftest import run_and_report


def test_text_hybrid(benchmark, settings):
    run_and_report(benchmark, "text_hybrid", settings)
