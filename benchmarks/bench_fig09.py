"""Benchmark harness regenerating Fig 9 of the paper.

Prints the reproduced rows/series and the paper-vs-measured claims;
see repro/experiments/fig09*.py for the experiment definition.
"""

from conftest import run_and_report


def test_fig09(benchmark, settings):
    run_and_report(benchmark, "fig09", settings)
