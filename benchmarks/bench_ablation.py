"""Ablation benches for the design choices DESIGN.md §5 calls out.

Each test prints a small table exploring one knob around the paper's
chosen design point:

* hybrid switch thresholds (alpha / beta);
* the allgather algorithm menu, including the multi-leader scheme of
  Kandalla et al. that the paper argues against (Section III.B);
* the number of parallel-allgather subgroups (Fig. 7 generalized);
* shared vs private ``in_queue`` effect on the *computation* phase;
* extrapolation-mode fidelity (predicting a directly-simulatable scale);
* a hugepages what-if (TLB penalty removed);
* the degree-balanced partition extension.
"""

from __future__ import annotations

import dataclasses as dc

import numpy as np
import pytest

from repro.core import BFSConfig, BFSEngine
from repro.graph import rmat_graph
from repro.graph.degree import sample_roots
from repro.machine import paper_cluster
from repro.machine.spec import MB
from repro.model import extrapolate_result
from repro.model.analytic import analytic_graph500
from repro.mpi import (
    AllgatherAlgorithm,
    ProcessMapping,
    SimComm,
    allgather_time,
    parallel_allgather_time,
)
from repro.util.formatting import format_table, format_time_ns


@pytest.fixture(scope="module")
def cluster16():
    return paper_cluster(nodes=16)


@pytest.fixture(scope="module")
def comm16(cluster16):
    return SimComm(cluster16, ProcessMapping(cluster16, ppn=8))


def test_alpha_beta_sweep(benchmark, cluster16):
    """The Beamer thresholds: TEPS across the (alpha, beta) grid; the
    default (14, 24) should sit near the plateau."""

    def sweep():
        rows = []
        for alpha in (2, 8, 14, 32, 128):
            for beta in (8, 24, 96):
                cfg = dc.replace(
                    BFSConfig.par_allgather_variant(), alpha=alpha, beta=beta
                )
                teps = analytic_graph500(cluster16, cfg, 32).teps
                rows.append([alpha, beta, teps / 1e9])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(["alpha", "beta", "GTEPS"], rows,
                       title="ablation: hybrid switch thresholds"))
    default = next(r[2] for r in rows if r[0] == 14 and r[1] == 24)
    best = max(r[2] for r in rows)
    assert default > 0.6 * best  # the paper's choice is near-optimal


def test_allgather_algorithm_menu(benchmark, comm16):
    """All algorithms on the scale-32 in_queue payload; the paper's
    parallel-shared must beat multi-leader (which moves ppn x the data)."""
    total = 512 * MB
    part = total / comm16.num_ranks
    algos = [
        AllgatherAlgorithm.RING,
        AllgatherAlgorithm.RECURSIVE_DOUBLING,
        AllgatherAlgorithm.LEADER,
        AllgatherAlgorithm.LEADER_OVERLAPPED,
        AllgatherAlgorithm.SHARED_IN,
        AllgatherAlgorithm.SHARED_ALL,
        AllgatherAlgorithm.MULTI_LEADER,
        AllgatherAlgorithm.PARALLEL_SHARED,
    ]

    def sweep():
        return {a: allgather_time(comm16, a, part, total)[0] for a in algos}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["algorithm", "time"],
        [[a.value, format_time_ns(t)] for a, t in times.items()],
        title="ablation: allgather algorithms, 512 MB on 128 ranks",
    ))
    assert times[AllgatherAlgorithm.PARALLEL_SHARED] < times[
        AllgatherAlgorithm.MULTI_LEADER
    ]
    assert times[AllgatherAlgorithm.PARALLEL_SHARED] == min(times.values())


def test_parallel_subgroup_count(benchmark, comm16):
    """Fig. 7 generalized: inter-node time vs subgroup count follows the
    Fig. 4 concurrency curve and saturates at 8."""
    part = 512 * MB / comm16.num_ranks

    def sweep():
        return {s: parallel_allgather_time(comm16, part, s) for s in (1, 2, 4, 8)}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["subgroups", "inter-node time"],
        [[s, format_time_ns(t)] for s, t in times.items()],
        title="ablation: parallel-allgather subgroups",
    ))
    ordered = [times[s] for s in (1, 2, 4, 8)]
    assert ordered == sorted(ordered, reverse=True)
    assert 1.5 < times[1] / times[8] < 2.5  # Fig. 4: ~2x


def test_sharing_effect_on_computation(benchmark):
    """Sharing in_queue slows the *computation* slightly (cross-socket
    reads) while slashing communication — the paper's II.D trade-off."""
    graph = rmat_graph(scale=14, seed=2)
    cluster = paper_cluster(nodes=8)
    root = int(sample_roots(graph, 1, seed=4)[0])

    def measure():
        out = {}
        for cfg in (BFSConfig.original_ppn8(), BFSConfig.share_in_queue_variant()):
            engine = BFSEngine(graph, cluster, cfg)
            pred = extrapolate_result(engine.run(root), engine, 31)
            out[cfg.label] = pred.timing.breakdown
        return out

    bds = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    rows = [
        [name, bd.bu_compute / 1e6, bd.bu_comm / 1e6]
        for name, bd in bds.items()
    ]
    print(format_table(
        ["variant", "bu compute [ms]", "bu comm [ms]"],
        rows,
        title="ablation: sharing in_queue, computation vs communication",
    ))
    orig, shared = bds["Original.ppn=8"], bds["Share in_queue"]
    assert shared.bu_comm < orig.bu_comm
    comp_penalty = shared.bu_compute / orig.bu_compute
    assert comp_penalty < 1.8  # sharing must not wreck computation
    assert (shared.bu_compute + shared.bu_comm) < (
        orig.bu_compute + orig.bu_comm
    )


def test_extrapolation_fidelity(benchmark):
    """Cross-validation of the count-extrapolation mode: predict scale 16
    from a scale-13 run and compare with the direct scale-16 simulation."""
    cluster = paper_cluster(nodes=4)

    def measure():
        cfg = BFSConfig.original_ppn8()
        g16 = rmat_graph(scale=16, seed=2)
        root16 = int(sample_roots(g16, 1, seed=4)[0])
        direct = BFSEngine(g16, cluster, cfg).run(root16).seconds

        g13 = rmat_graph(scale=13, seed=2)
        root13 = int(sample_roots(g13, 1, seed=4)[0])
        engine13 = BFSEngine(g13, cluster, cfg)
        predicted = extrapolate_result(
            engine13.run(root13), engine13, 16
        ).seconds
        return direct, predicted

    direct, predicted = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = predicted / direct
    print(f"\nextrapolation fidelity: direct {direct*1e3:.3f} ms, "
          f"predicted {predicted*1e3:.3f} ms (ratio {ratio:.2f})")
    assert 0.3 < ratio < 3.0


def test_hugepages_what_if(benchmark):
    """Removing the TLB penalty (2 MB pages) speeds up the computation —
    a what-if the machine model makes one-line cheap."""
    base = paper_cluster(nodes=16)
    sock = dc.replace(base.node.socket, tlb_penalty_ns=0.0)
    huge = dc.replace(base, node=dc.replace(base.node, socket=sock))

    def measure():
        cfg = BFSConfig.par_allgather_variant()
        return (
            analytic_graph500(base, cfg, 32).teps,
            analytic_graph500(huge, cfg, 32).teps,
        )

    teps_4k, teps_2m = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nhugepages what-if: 4K pages {teps_4k/1e9:.1f} GTEPS, "
          f"2M pages {teps_2m/1e9:.1f} GTEPS (+{(teps_2m/teps_4k-1)*100:.0f}%)")
    assert teps_2m > teps_4k


def test_degree_balanced_partition(benchmark):
    """Edge-balanced static partitioning on a skewed (non-permuted) R-MAT
    graph — a documented *negative* result.

    Balancing total edge mass does not balance *per-level* work: the hub
    region is exhausted in the first bottom-up level, after which the
    edge-light ranks idle.  This is why the reference code (and the
    paper) keep uniform blocks plus Graph500 label permutation, and fight
    the remaining imbalance with OpenMP dynamic scheduling inside each
    rank (IV.C).  The bench asserts correctness and total-time sanity,
    not improvement."""
    graph = rmat_graph(scale=14, seed=2, permute_labels=False)
    cluster = paper_cluster(nodes=4)
    root = int(sample_roots(graph, 1, seed=4)[0])

    def measure():
        out = {}
        for balanced in (False, True):
            cfg = dc.replace(BFSConfig.original_ppn8(), degree_balanced=balanced)
            engine = BFSEngine(graph, cluster, cfg)
            pred = extrapolate_result(engine.run(root), engine, 30)
            out[balanced] = pred.timing.breakdown
        return out

    bds = benchmark.pedantic(measure, rounds=1, iterations=1)
    stall_block = bds[False].stall
    stall_balanced = bds[True].stall
    print(f"\ndegree-balanced partition (non-permuted graph): stall "
          f"{stall_block/1e6:.2f} ms -> {stall_balanced/1e6:.2f} ms "
          f"(static edge balance does not fix per-level imbalance)")
    assert bds[True].total < 3 * bds[False].total
    assert bds[False].total < 3 * bds[True].total


def test_omp_scheduling(benchmark):
    """The paper's IV.C remark: the OpenMP dynamic scheduler avoids
    intra-rank load imbalance.  Static chunking prices the skew penalty."""
    graph = rmat_graph(scale=14, seed=2)
    cluster = paper_cluster(nodes=4)
    root = int(sample_roots(graph, 1, seed=4)[0])

    def measure():
        out = {}
        for dynamic in (True, False):
            cfg = dc.replace(BFSConfig.original_ppn8(), omp_dynamic=dynamic)
            engine = BFSEngine(graph, cluster, cfg)
            out[dynamic] = extrapolate_result(engine.run(root), engine, 30)
        return out

    preds = benchmark.pedantic(measure, rounds=1, iterations=1)
    dyn, sta = preds[True].seconds, preds[False].seconds
    print(f"\nOpenMP scheduling: dynamic {dyn:.3f} s, static {sta:.3f} s "
          f"({sta / dyn:.2f}x slower without dynamic chunks)")
    assert sta > dyn
