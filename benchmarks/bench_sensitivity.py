"""Robustness bench: the paper's qualitative claims must survive ±50%
perturbations of every calibration constant (DESIGN.md §6).
"""

from __future__ import annotations

from repro.model.sensitivity import sensitivity_sweep
from repro.util.formatting import format_table


def test_claims_survive_calibration_perturbations(benchmark):
    sweep = benchmark.pedantic(
        sensitivity_sweep, kwargs={"factors": (0.5, 1.0, 1.5)},
        rounds=1, iterations=1,
    )
    rows = []
    failures = []
    for constant, outcomes in sweep.items():
        for factor, outcome in outcomes.items():
            rows.append(
                [
                    constant,
                    factor,
                    f"{outcome.numa_speedup:.2f}x",
                    f"{outcome.overall_speedup:.2f}x",
                    "yes" if outcome.comm_chain_monotone else "NO",
                ]
            )
            if not outcome.claims_hold:
                failures.append((constant, factor, outcome))
    print()
    print(format_table(
        ["constant", "x", "NUMA speedup", "overall speedup", "chain monotone"],
        rows,
        title="sensitivity: paper claims under calibration perturbation",
    ))
    assert not failures, failures
