"""Migration bench: the paper's optimizations applied to PageRank.

The conclusion of the paper claims its approaches "can be migrated to
other applications with similar characteristic" — i.e. any superstep
algorithm that allgathers a large replicated vector.  This bench runs
distributed PageRank (whose per-iteration rank-vector allgather is the
``in_queue`` pattern, 64x bigger) under the optimization stack and
reports the per-iteration communication cut.
"""

from __future__ import annotations

from repro.analysis.pagerank import distributed_pagerank
from repro.core import BFSConfig
from repro.graph import rmat_graph
from repro.machine import paper_cluster
from repro.util.formatting import format_table, format_time_ns


def test_pagerank_migration(benchmark):
    graph = rmat_graph(scale=14, seed=2)
    cluster = paper_cluster(nodes=8)
    variants = {
        "Original.ppn=8": BFSConfig.original_ppn8(),
        "Share in_queue": BFSConfig.share_in_queue_variant(),
        "Share all": BFSConfig.share_all_variant(),
        "Par allgather": BFSConfig.par_allgather_variant(),
    }

    def measure():
        return {
            name: distributed_pagerank(graph, cluster, cfg, tol=1e-9)
            for name, cfg in variants.items()
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [
            name,
            res.iterations,
            format_time_ns(res.per_iteration_comm_ns),
            f"{res.comm_fraction * 100:.0f}%",
        ]
        for name, res in results.items()
    ]
    print()
    print(format_table(
        ["variant", "iterations", "comm per iteration", "comm share"],
        rows,
        title="migration claim: PageRank under the paper's optimizations",
    ))
    comm = {n: r.per_iteration_comm_ns for n, r in results.items()}
    ordered = [
        comm["Original.ppn=8"],
        comm["Share in_queue"],
        comm["Share all"],
        comm["Par allgather"],
    ]
    assert ordered == sorted(ordered, reverse=True)
    # The results themselves are configuration-independent.
    import numpy as np

    base = results["Original.ppn=8"].ranks
    for res in results.values():
        assert np.allclose(res.ranks, base)
