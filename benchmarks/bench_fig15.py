"""Benchmark harness regenerating Fig 15 of the paper.

Prints the reproduced rows/series and the paper-vs-measured claims;
see repro/experiments/fig15*.py for the experiment definition.
"""

from conftest import run_and_report


def test_fig15(benchmark, settings):
    run_and_report(benchmark, "fig15", settings)
