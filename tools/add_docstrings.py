#!/usr/bin/env python3
"""One-shot maintenance script: insert missing docstrings.

Maps fully-qualified names flagged by tests/test_docstrings.py to
hand-written one-line docstrings and inserts them via AST line numbers.
Kept in tools/ for provenance; safe to re-run (skips documented defs).
"""

from __future__ import annotations

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

DOCS: dict[str, str] = {
    # module-level items
    "repro.core.counts.Direction": "Direction labels for BFS levels (string constants).",
    "repro.experiments.cli.main": "Console entry point; returns a process exit code.",
    "repro.experiments.ext_modern.run": "Run the modern-hardware extension experiment.",
    "repro.experiments.fig03_numa_speedup.run": "Reproduce Fig. 3 (core-count speedups under NUMA).",
    "repro.experiments.fig04_network_bw.run": "Reproduce Fig. 4 (node bandwidth vs processes per node).",
    "repro.experiments.fig06_leader_allgather.run": "Reproduce Fig. 6 (default vs leader-based allgather).",
    "repro.experiments.fig09_overview.run": "Reproduce Fig. 9 (the optimization-stack overview).",
    "repro.experiments.fig10_binding.run": "Reproduce Fig. 10 (single-node execution policies).",
    "repro.experiments.fig11_breakdown.run": "Reproduce Fig. 11 (per-phase time breakdown).",
    "repro.experiments.fig12_comm_weak_scaling.run": "Reproduce Fig. 12 (communication cost under weak scaling).",
    "repro.experiments.fig13_comm_reduction.run": "Reproduce Fig. 13 (comm reduction per optimization).",
    "repro.experiments.fig14_comm_proportion.run": "Reproduce Fig. 14 (comm proportion per optimization).",
    "repro.experiments.fig15_weak_scalability.run": "Reproduce Fig. 15 (weak scalability of all variants).",
    "repro.experiments.fig16_granularity.run": "Reproduce Fig. 16 (summary granularity sweep).",
    "repro.experiments.report.render_markdown": "Render all experiment results as the EXPERIMENTS.md document.",
    "repro.experiments.table1_config.run": "Reproduce Table I (node configuration).",
    "repro.experiments.text_claims.run": "Reproduce the Section II.A hybrid-vs-pure speedup claims.",
    "repro.machine.memory.Placement": "Where a structure's pages live relative to its readers.",
    "repro.machine.presets.quad_socket_cluster": "Cluster of 4-socket nodes.",
    "repro.machine.presets.modern_cluster": "Cluster of modern dual-socket nodes.",
    "repro.mpi.collectives.AllgatherAlgorithm": "The allgather algorithm menu (see module docstring).",
    "repro.mpi.mapping.BindingPolicy": "The mpirun/numactl policies of Fig. 10.",
    # methods / properties
    "repro.analysis.algorithms.AnalysisCost.add": "Record one more priced traversal.",
    "repro.analysis.algorithms.SeparationHistogram.fraction_within": "Fraction of reached vertices within ``hops`` hops.",
    "repro.core.api.ConfigComparison.best": "Name of the fastest configuration.",
    "repro.core.bitmap.Bitmap.from_indices": "Bitmap with the given bit positions set.",
    "repro.core.bitmap.Bitmap.set": "Set the bits at ``indices`` (in place).",
    "repro.core.bitmap.Bitmap.count": "Number of set bits.",
    "repro.core.bitmap.Bitmap.indices": "Positions of the set bits, ascending.",
    "repro.core.bitmap.Bitmap.clear": "Reset every bit to 0.",
    "repro.core.bitmap.Bitmap.copy": "Deep copy of the bitmap.",
    "repro.core.bitmap.Bitmap.nbytes": "Bytes occupied by the word array.",
    "repro.core.bitmap.SummaryBitmap.nbytes": "Bytes occupied by the summary's word array.",
    "repro.core.config.BFSConfig.shares_in_queue": "True when in_queue lives in node-shared memory.",
    "repro.core.config.BFSConfig.shares_everything": "True when out_queue and summaries are shared too.",
    "repro.core.config.BFSConfig.resolve_ppn": "Processes per node (defaults to one per socket).",
    "repro.core.config.BFSConfig.in_queue_placement": "Memory placement of in_queue under this configuration.",
    "repro.core.config.BFSConfig.summary_placement": "Memory placement of the summary under this configuration.",
    "repro.core.config.BFSConfig.named": "Copy of this configuration with a display label.",
    "repro.core.config.BFSConfig.share_in_queue_variant": "'Share in_queue': node-shared in_queue (no broadcast step).",
    "repro.core.config.BFSConfig.share_all_variant": "'Share all': out_queue and summaries shared too (no gather).",
    "repro.core.config.BFSConfig.par_allgather_variant": "'Par allgather': the Fig. 7 parallel-subgroup allgather.",
    "repro.core.config.BFSConfig.granularity_variant": "The full stack with a chosen summary granularity.",
    "repro.core.counts.LevelCounts.validate": "Check per-rank array shapes against the rank count.",
    "repro.core.counts.RunCounts.validate": "Validate every level's shapes.",
    "repro.core.counts.RunCounts.num_levels": "Number of BFS levels in the run.",
    "repro.core.counts.RunCounts.total_examined_edges": "Edges examined across all levels and ranks.",
    "repro.core.engine.BFSResult.visited": "Number of reached vertices (including the root).",
    "repro.core.engine.BFSResult.traversed_edges": "Undirected input edges in the root's component (TEPS numerator).",
    "repro.core.engine.BFSResult.seconds": "Simulated wall time of the traversal.",
    "repro.core.hybrid.DirectionPolicy.direction": "Direction chosen for the current level.",
    "repro.core.state.RankState.rank": "This state's MPI rank.",
    "repro.core.state.RankState.visited_count": "Number of discovered local vertices.",
    "repro.core.teps.Graph500Result.harmonic_mean_teps": "The Graph500 headline figure.",
    "repro.core.teps.Graph500Result.mean_seconds": "Arithmetic mean of per-root traversal times.",
    "repro.core.timing.StructureSizes.in_queue_bytes": "Bytes of the full frontier bitmap.",
    "repro.core.timing.StructureSizes.summary_bytes": "Bytes of the summary bitmap at this granularity.",
    "repro.core.timing.StructureSizes.local_vertices": "Vertices per rank.",
    "repro.core.timing.StructureSizes.out_part_bytes": "Bytes of one rank's out_queue bitmap part.",
    "repro.core.timing.StructureSizes.parent_bytes": "Bytes of one rank's parent array.",
    "repro.core.timing.StructureSizes.local_graph_bytes": "Bytes of one rank's CSR partition.",
    "repro.core.timing.StructureSizes.from_counts": "Sizes implied by a run's counts at its own scale.",
    "repro.core.timing.LevelTiming.total_ns": "Level total: compute + comm + switch + stall.",
    "repro.core.timing.PhaseBreakdown.total": "Sum of all six phases.",
    "repro.core.timing.PhaseBreakdown.as_dict": "The six phases as a plain dict (ns).",
    "repro.core.timing.BfsTiming.total_ns": "Total simulated nanoseconds.",
    "repro.core.timing.BfsTiming.total_seconds": "Total simulated seconds.",
    "repro.core.trace.LevelTraceRow.total_ns": "Level total: compute + comm + switch + stall.",
    "repro.core.trace.LevelTraceRow.as_dict": "The row as a plain dict (CSV/JSON field order).",
    "repro.core.twod.Grid2D.size": "Number of ranks in the grid.",
    "repro.core.twod.Grid2D.rank_of": "Rank at grid coordinate (i, j), row-major.",
    "repro.core.twod.Grid2D.coords": "Grid coordinate (i, j) of a rank.",
    "repro.core.twod.Grid2D.column_ranks": "Ranks of processor-column j.",
    "repro.core.twod.Grid2D.row_ranks": "Ranks of processor-row i.",
    "repro.core.twod.TwoDResult.visited": "Number of reached vertices.",
    "repro.core.twod.TwoDResult.seconds": "Simulated wall time of the traversal.",
    "repro.core.twod.TwoDResult.teps": "Traversed edges per simulated second.",
    "repro.core.twod.TwoDResult.total_comm_bytes": "Bytes moved across the whole run (expand + fold).",
    "repro.core.twod.TwoDBFSEngine.run": "Execute one 2-D BFS from ``root`` and price it.",
    "repro.experiments.common.ExperimentSettings.measured_scale": "Functional-run scale for a paper scale (floor at 13).",
    "repro.experiments.common.ExperimentSettings.quick": "Fastest settings (2 roots, deeper offset).",
    "repro.experiments.common.ExperimentResult.add_claim": "Record one paper-vs-measured claim.",
    "repro.experiments.common.ExperimentResult.to_text": "Render the table, charts and claims as plain text.",
    "repro.graph.degree.DegreeStatistics.isolated_fraction": "Share of degree-0 vertices.",
    "repro.graph.partition.LocalGraph.num_local_vertices": "Vertices this rank owns.",
    "repro.graph.partition.LocalGraph.num_local_arcs": "Directed arcs stored by this rank.",
    "repro.graph.partition.LocalGraph.memory_bytes": "Bytes of this rank's CSR arrays.",
    "repro.graph.partition.Partition1D.size_of": "Number of vertices owned by ``part``.",
    "repro.graph.types.EdgeList.num_edges": "Number of raw edges (duplicates included).",
    "repro.machine.costmodel.AccessCounts.add_random": "Record random single-word reads into a structure.",
    "repro.machine.costmodel.AccessCounts.add_stream": "Record sequentially streamed bytes through a structure.",
    "repro.machine.costmodel.AccessCounts.add_cpu": "Record scalar CPU work in cycles.",
    "repro.machine.costmodel.ComputeTimeBreakdown.total_ns": "Roofline total: max of the three terms.",
    "repro.machine.costmodel.CostModel.compute_time": "Price one phase's access counts on the machine.",
    "repro.machine.spec.IbSpec.peak_bandwidth": "All ports combined, fully saturated.",
    "repro.machine.spec.NodeSpec.cores": "Cores per node.",
    "repro.machine.spec.NodeSpec.dram_total": "DRAM capacity per node.",
    "repro.machine.spec.NodeSpec.total_dram_bandwidth": "Aggregate DRAM bandwidth of all sockets.",
    "repro.machine.spec.ClusterSpec.total_cores": "Cores in the whole cluster.",
    "repro.machine.spec.ClusterSpec.total_sockets": "Sockets in the whole cluster.",
    "repro.model.analytic.AnalyticResult.seconds": "Simulated wall time of the traversal.",
    "repro.model.analytic.AnalyticResult.traversed_edges": "TEPS numerator implied by the analytic profile.",
    "repro.model.analytic.AnalyticResult.teps": "Traversed edges per simulated second.",
    "repro.model.analytic.AnalyticResult.mean_bu_comm_per_level": "Average cost of one bottom-up communication phase (ns).",
    "repro.model.extrapolate.ScaledPrediction.seconds": "Simulated wall time at the target scale.",
    "repro.model.extrapolate.ScaledPrediction.teps": "Traversed edges per simulated second at the target scale.",
    "repro.model.fit.CalibrationTarget.measured": "The ratio the model currently produces on ``cluster``.",
    "repro.model.levelprofile.DegreeClasses.num_vertices": "Total vertices at this scale.",
    "repro.model.levelprofile.DegreeClasses.mean_degree": "Mean degree over all vertices (isolated included).",
    "repro.model.levelprofile.DegreeClasses.isolated_fraction": "Expected share of degree-0 vertices.",
    "repro.model.predict.PredictedGraph500.per_root_teps": "Predicted TEPS per root.",
    "repro.model.predict.PredictedGraph500.harmonic_mean_teps": "The Graph500 headline figure at the target scale.",
    "repro.model.predict.PredictedGraph500.mean_seconds": "Arithmetic mean of per-root predicted times.",
    "repro.model.predict.PredictedGraph500.mean_breakdown": "Per-phase times averaged over the roots (ns).",
    "repro.model.sensitivity.ClaimOutcome.claims_hold": "True when every qualitative paper claim holds.",
    "repro.mpi.mapping.ProcessMapping.node_of": "Node hosting ``rank``.",
    "repro.mpi.mapping.ProcessMapping.ranks_on_node": "Ranks hosted by ``node``.",
    "repro.mpi.mapping.ProcessMapping.is_leader": "True for the node's lowest rank.",
    "repro.mpi.schedule.ScheduleStep.render": "One-line rendering of the step.",
    "repro.mpi.sharedmem.NodeSharedBuffer.num_regions": "Number of per-rank write regions.",
    "repro.mpi.sharedmem.NodeSharedBuffer.fill": "Fill the whole buffer with ``value``.",
    "repro.mpi.simcomm.CollectiveResult.max_time": "Slowest rank's time (the collective's completion).",
    "repro.mpi.simcomm.SimComm.same_node": "True when two ranks share a node.",
    "repro.mpi.simcomm.SimComm.allreduce_max": "Elementwise maximum across all ranks.",
}


def qualify(module_name: str, node_stack: list[str], name: str) -> str:
    return ".".join([module_name, *node_stack, name])


def process(path: Path) -> int:
    module_name = (
        "repro." + ".".join(path.relative_to(SRC / "repro").with_suffix("").parts)
    )
    if module_name.endswith(".__init__"):
        module_name = module_name[: -len(".__init__")]
    text = path.read_text()
    tree = ast.parse(text)
    lines = text.splitlines(keepends=True)
    inserts: list[tuple[int, str]] = []  # (line index, docstring line)

    def visit(node, stack):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                qual = qualify(module_name, stack, child.name)
                doc = DOCS.get(qual)
                if doc and ast.get_docstring(child) is None:
                    body_line = child.body[0].lineno - 1
                    indent = len(lines[body_line]) - len(
                        lines[body_line].lstrip()
                    )
                    inserts.append(
                        (body_line, " " * indent + f'"""{doc}"""\n')
                    )
                visit(child, stack + [child.name])

    visit(tree, [])
    for line_idx, content in sorted(inserts, reverse=True):
        lines.insert(line_idx, content)
    if inserts:
        path.write_text("".join(lines))
    return len(inserts)


def main() -> None:
    total = 0
    for path in sorted((SRC / "repro").rglob("*.py")):
        total += process(path)
    print(f"inserted {total} docstrings")


if __name__ == "__main__":
    main()
