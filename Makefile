# Developer convenience targets for the reproduction.

.PHONY: install test bench bench-baseline bench-smoke perf-gate chaos-smoke serve-chaos ledger-log ledger-check dashboard experiments report examples all clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Kernel-backend baseline: records wall-clock numbers for every
# registered BFS kernel (reference / activeset / cnative) on a real
# mid-BFS level to BENCH_kernels.json, with backend/scale metadata in
# extra_info and the commit hash in commit_info.  The comm baseline
# records the frontier-codec byte table (raw vs wire allgather bytes per
# codec at the paper configuration) to BENCH_comm.json and enforces the
# >=30 % auto reduction.  Both JSONs are folded into the persistent run
# ledger so baseline refreshes show up in the trend dashboard.  Compare
# runs with `pytest-benchmark compare`.
# See docs/PERFORMANCE.md and docs/COMMUNICATION.md.
bench-baseline:
	pytest benchmarks/bench_kernels.py --benchmark-only \
		--benchmark-json=BENCH_kernels.json
	pytest benchmarks/bench_comm.py --benchmark-only \
		--benchmark-json=BENCH_comm.json
	repro-ledger log \
		--from-bench BENCH_kernels.json \
		--from-bench BENCH_comm.json

# Fresh benchmark JSONs for gating (not the committed baselines):
# kernels at the CI smoke scale (12), comm at the baseline scale (15 —
# its simulated metrics are deterministic, so they diff exactly against
# the committed file even across machines).
bench-smoke:
	mkdir -p .perfgate
	REPRO_BENCH_SCALE=12 pytest benchmarks/bench_kernels.py --benchmark-only \
		--benchmark-json=.perfgate/BENCH_kernels.json
	pytest benchmarks/bench_comm.py --benchmark-only \
		--benchmark-json=.perfgate/BENCH_comm.json

# Regression gate: diff the fresh bench-smoke JSONs against the
# committed baselines.  Wall-clock stats are ignored (baselines come
# from another machine); simulated metrics get a generous 100 %
# (2x sim-time) tolerance.  Kernel benchmarks carrying a different
# scale context are reported as incomparable, not gated.
# See docs/OBSERVABILITY.md.
perf-gate: bench-smoke
	repro-perf diff BENCH_kernels.json .perfgate/BENCH_kernels.json \
		--fail-on-regress 100 --no-wall --json .perfgate/verdict_kernels.json
	repro-perf diff BENCH_comm.json .perfgate/BENCH_comm.json \
		--fail-on-regress 100 --no-wall --json .perfgate/verdict_comm.json

# Fault-injection campaign: sweep the chaos scenario catalogue at the
# CI smoke scale and fail unless every scenario comes back recovered
# (bit-identical + validated) or degraded-but-correct.  The JSON report
# lands in .perfgate/ next to the perf verdicts.  See docs/ROBUSTNESS.md.
chaos-smoke:
	mkdir -p .perfgate
	repro-chaos --scale 12 --nodes 2 --seed 0 \
		--json .perfgate/chaos-report.json --ledger

# Serving-layer chaos: inject a dispatcher kill and a straggler batch
# into a resilience-enabled scheduler under load; both scenarios must
# end `recovered` (SLO burn detected then cleared, answers correct).
# See the "Serving resilience" sections of docs/ROBUSTNESS.md and
# docs/SERVING.md.
serve-chaos:
	mkdir -p .perfgate
	repro-chaos serve dispatcher-kill straggler \
		--scale 11 --nodes 2 --seed 0 \
		--json .perfgate/serve-chaos-report.json \
		--slo-out .perfgate/serve-chaos-slo.json --ledger

# Fold the latest gate artifacts (fresh bench JSONs, perf verdicts,
# chaos report) into the persistent run ledger under .repro/ledger.
# See docs/OBSERVABILITY.md ("The run ledger").
ledger-log:
	repro-ledger log \
		--from-bench .perfgate/BENCH_kernels.json \
		--from-bench .perfgate/BENCH_comm.json \
		--from-perfdiff .perfgate/verdict_kernels.json \
		--from-perfdiff .perfgate/verdict_comm.json \
		--from-chaos .perfgate/chaos-report.json

# N-run trend check over the ledger: each series' newest run against
# the rolling median of its own history; exits non-zero on a break.
ledger-check:
	repro-ledger check --fail-on-break

# Self-contained static HTML dashboard over the ledger (inline SVG).
dashboard:
	repro-ledger dash --out dashboard.html

experiments:
	repro-experiment all --quick

report:
	python -m repro.experiments.report EXPERIMENTS.md

examples:
	python examples/quickstart.py 13
	python examples/social_network_analysis.py 13
	python examples/cluster_design_space.py
	python examples/granularity_tuning.py 30 8
	python examples/two_d_partitioning.py 13

all: install test bench report

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf src/repro.egg-info .benchmarks
